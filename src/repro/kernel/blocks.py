"""Block-cached reference generation.

The interpreter computes one :class:`~repro.workloads.base.Reference`
per call to ``ref_at``; the accelerated backends instead materialise a
whole *block* of consecutive references at once (vectorized with numpy
where a generator exists, plain loops otherwise) and serve individual
lookups from the cached block.

Blocks are stored as three parallel lists (``think``, ``is_write``,
``addr``) rather than as Reference tuples: the compiled drain loop
reads the columns directly, and the scalar path only pays for a tuple
when a reference actually reaches the interpreter (misses and
protocol-path references — the minority).

Bit-identity is structural: streams are pure functions of
``(seed, proc, index)``, so producing reference ``i`` inside a block
yields exactly the value the scalar path would — block boundaries,
rewinds (checkpoint rollback resets ``stream.position``) and stream
migration after a permanent failure all just re-address the same pure
function.
"""

from __future__ import annotations

from typing import Callable

from repro.workloads.base import Reference, ReferenceStream, Workload

_tuple_new = tuple.__new__

#: References materialised per block.  Large enough to amortise numpy
#: call overhead, small enough that a rollback re-generating one block
#: is negligible (a block regenerates in tens of microseconds).
BLOCK_LEN = 4096

#: A block generator: ``gen(proc, base, count)`` producing the column
#: triple ``(think_list, is_write_list, addr_list)`` for references
#: ``base .. base+count-1`` of process ``proc``.
BlockGenerator = Callable[[int, int, int], tuple]


class BlockRefAt:
    """A drop-in replacement for ``stream._ref_at`` serving lookups
    from a one-block cache.

    The processor fast path re-reads ``stream._ref_at`` every batch and
    calls it as ``ref_at(proc, index)``; this object is that callable.
    It also exposes :meth:`block` so the compiled drain loop can walk
    the rest of the current block without per-reference Python calls.
    """

    __slots__ = ("_gen", "_n_refs", "_proc", "_base", "_end",
                 "_think", "_is_write", "_addr")

    def __init__(self, gen: BlockGenerator, n_refs: int):
        self._gen = gen
        self._n_refs = n_refs
        self._proc = -1
        self._base = 0
        self._end = 0
        self._think: list = []
        self._is_write: list = []
        self._addr: list = []

    def _load(self, proc: int, index: int) -> None:
        base = index - index % BLOCK_LEN
        count = min(BLOCK_LEN, self._n_refs - base)
        if count < 1:
            # out-of-range index (never produced by the stream walk, but
            # ref_at is a public pure function): fall back to a single-
            # element block so behaviour matches the scalar call
            count = 1
        self._think, self._is_write, self._addr = self._gen(proc, base, count)
        self._proc = proc
        self._base = base
        self._end = base + len(self._addr)

    def __call__(self, proc: int, index: int) -> Reference:
        if proc != self._proc or not self._base <= index < self._end:
            self._load(proc, index)
        i = index - self._base
        return _tuple_new(
            Reference, (self._think[i], self._is_write[i], self._addr[i])
        )

    def block(self, proc: int, index: int) -> tuple[list, list, list, int]:
        """The cached column triple covering ``index`` plus its base."""
        if proc != self._proc or not self._base <= index < self._end:
            self._load(proc, index)
        return self._think, self._is_write, self._addr, self._base


def scalar_block_generator(workload: Workload) -> BlockGenerator:
    """Fallback generator: the workload's own scalar ``ref_at`` in a
    loop.  Used for families without a vectorized generator so the
    compiled drain still gets materialised blocks to walk."""
    ref_at = workload.ref_at

    def gen(proc: int, base: int, count: int) -> tuple:
        think: list = []
        is_write: list = []
        addr: list = []
        for i in range(count):
            t, w, a = ref_at(proc, base + i)
            think.append(t)
            is_write.append(w)
            addr.append(a)
        return think, is_write, addr

    return gen


def wrap_stream(stream: ReferenceStream, gen: BlockGenerator) -> None:
    """Interpose a block cache on one stream's ``_ref_at``."""
    if isinstance(stream._ref_at, BlockRefAt):
        return
    stream._ref_at = BlockRefAt(gen, stream.n_refs)
