"""The numpy-vectorized kernel backend.

Reference-stream generation is the single hottest path of a run
(SplitMix64 hashing + op classification + address arithmetic per
reference); this backend produces whole blocks of references as uint64
array operations with **identical draw order** to the scalar
generators:

- the SplitMix64 finalizer runs on uint64 arrays (numpy wrap-around
  arithmetic equals the interpreter's explicit ``& _MASK64`` masking);
- probability draws compare the same hoisted power-of-two-scaled float
  thresholds against the same 20-bit hash fields, so every comparison
  is exact (see the threshold notes in ``workloads/splash.py``);
- the Zipf inverse-CDF inversion uses ``np.searchsorted(side="left")``
  over the same float64 CDF table — element-for-element equal to
  ``bisect_left``;
- the calibrated SPLASH generators vectorize the hash/classification/
  think/private-address arithmetic and call the subclass's scalar
  ``_shared_addr`` (a pure function) only for the shared minority.

Every generator is asserted bit-identical against the scalar path by
``tests/kernel/test_block_generators.py`` and, end to end, by the
golden digests.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.kernel import BackendUnavailable, KernelBackend
from repro.kernel.blocks import BlockGenerator, wrap_stream
from repro.workloads.base import Workload, mix64

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine

try:  # import-guarded: numpy ships via the repro[vector] extra
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

#: 53-bit mantissa mask for the Zipf uniform draw (matches datacenter._U53).
_MASK53 = (1 << 53) - 1
_U53 = float(1 << 53)


def _u64(value: int):
    return _np.uint64(value)


def _mix64_arr(x):
    """SplitMix64 finalizer over a uint64 array (wrap-around semantics
    equal the scalar ``& _MASK64`` masking bit for bit)."""
    x = x + _np.uint64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> _np.uint64(30))) * _np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _np.uint64(27))) * _np.uint64(0x94D049BB133111EB)
    return x ^ (x >> _np.uint64(31))


def _salt_base(workload: Workload, salt: int):
    """uint64 of ``mix64(seed * 0x1F1F1F1F + salt)`` — the per-salt
    seed mix every scalar ``_hash`` call memoizes."""
    return _u64(mix64(workload.seed * 0x1F1F1F1F + salt))


# Generators return the block column triple (think, is_write, addr) as
# plain Python lists — see repro.kernel.blocks for why columns, not
# Reference tuples.


def _pick_addr_vec(wl, base: int, size_bytes: int, proc: int, idx,
                   salt: int, block_len: int, window_items: int):
    """``Workload._pick_addr`` over an index array (same salt for all
    elements).  Mirrors the scalar arithmetic operation for operation;
    the scalar's per-(proc, salt) block memo is irrelevant here because
    the block hash is recomputed as a pure function."""
    np = _np
    u64 = np.uint64
    item_bytes = wl.item_bytes
    n_items = size_bytes // item_bytes
    if n_items < 1:
        n_items = 1
    block = idx // u64(block_len)
    pi = u64(proc << 40) ^ idx
    h = _mix64_arr(_salt_base(wl, salt) ^ pi)
    slot = h % u64(window_items if window_items < n_items else n_items)
    bh = _mix64_arr(_salt_base(wl, salt ^ 0x5A5A) ^ u64(proc << 40) ^ block)
    fin = _mix64_arr(bh + slot)
    offset = (h >> u64(32)) % u64(item_bytes)
    return (
        u64(base)
        + (fin % u64(n_items)) * u64(item_bytes)
        + (offset & u64(0xFFFFFFFFFFFFFFFC))  # & ~0x3
    )


def _water_shared_block(wl, proc: int, idx, h40, sel, addr_list: list) -> None:
    """Vectorized ``Water._shared_addr`` for the shared minority of a
    block: group by (iteration, slice-vs-whole branch) — at most a
    handful of groups per block — and run ``_pick_addr_vec`` per group.
    Patches results into ``addr_list`` in place."""
    np = _np
    u64 = np.uint64
    idx_s = idx[sel]
    h = h40[sel]
    iteration = (idx_s * u64(wl._ITERATIONS)) // u64(max(1, wl._rpp))
    n_items = wl._forces_bytes // wl.item_bytes
    slice_items = max(1, n_items // wl.n_procs)
    item_bytes = wl.item_bytes
    local_slice = (h % u64(100)) < u64(80)
    out = np.zeros(len(idx_s), dtype=np.uint64)
    for it in np.unique(iteration).tolist():
        it_mask = iteration == u64(it)
        for in_slice in (True, False):
            m = it_mask & (local_slice if in_slice else ~local_slice)
            if not m.any():
                continue
            if in_slice:
                out[m] = _pick_addr_vec(
                    wl,
                    wl._forces + (proc * slice_items % n_items) * item_bytes,
                    slice_items * item_bytes,
                    proc, idx_s[m], salt=0xF0CE + it,
                    block_len=4096, window_items=16,
                )
            else:
                out[m] = _pick_addr_vec(
                    wl, wl._forces, wl._forces_bytes,
                    proc, idx_s[m], salt=0xF1CE + it,
                    block_len=4096, window_items=12,
                )
    out_l = out.tolist()
    for j, k in enumerate(np.nonzero(sel)[0].tolist()):
        addr_list[k] = out_l[j]


class CalibratedBlockGen:
    """Vectorized blocks for the SPLASH calibrated generators.

    The private majority (hash, op class, think dither, windowed
    private address) is pure array math; shared references delegate to
    the workload's scalar ``_shared_addr`` — a pure function of
    ``(proc, index, is_write, h >> 40)``, so mixing scalar calls into a
    vector block cannot perturb any draw.
    """

    def __init__(self, workload):
        from repro.workloads.splash import Water

        if not workload._priv_ready:
            workload._init_priv_consts()
        self.wl = workload
        # water's shared path is plain hash arithmetic and has its own
        # vector kernel; the other calibrated families keep the scalar
        # _shared_addr call for their minority of shared references
        self._water = isinstance(workload, Water)

    def __call__(self, proc: int, base: int, count: int) -> tuple:
        wl = self.wl
        np = _np
        u64 = np.uint64
        idx = np.arange(base, base + count, dtype=np.uint64)
        pi = u64(proc << 40) ^ idx

        # == splash._CalibratedWorkload.ref_at, vectorized ==
        h = _mix64_arr(u64(wl._h_ref_base) ^ pi)
        is_write = (h & u64(0xFFFFF)).astype(np.float64) < wl._w_thresh
        h_class = ((h >> u64(20)) & u64(0xFFFFF)).astype(np.float64)
        shared = np.where(is_write, h_class < wl._sw_thresh, h_class < wl._sr_thresh)

        addr = np.zeros(count, dtype=np.uint64)
        item_bytes = u64(wl.item_bytes)
        n_items = u64(wl._priv_n_items)
        priv_base = u64(wl._private[proc])
        off_mask = u64(0xFFFFFFFFFFFFFFFC)  # & ~0x3 on a uint64 field
        for write_branch in (True, False):
            sel = ~shared & (is_write if write_branch else ~is_write)
            if not sel.any():
                continue
            idx_s = idx[sel]
            if write_branch:
                block = idx_s // u64(wl._pw_blklen)
                window = u64(wl._pw_window)
                hp = _mix64_arr(u64(wl._h_pw) ^ pi[sel])
                bh = _mix64_arr(u64(wl._h_pwb) ^ u64(proc << 40) ^ block)
            else:
                block = idx_s >> u64(12)  # // 4096
                window = u64(wl._pr_window)
                hp = _mix64_arr(u64(wl._h_pr) ^ pi[sel])
                bh = _mix64_arr(u64(wl._h_prb) ^ u64(proc << 40) ^ block)
            fin = _mix64_arr(bh + hp % window)
            addr[sel] = (
                priv_base
                + (fin % n_items) * item_bytes
                + ((hp >> u64(32)) % item_bytes & off_mask)
            )

        addr_list = addr.tolist()
        isw_list = is_write.tolist()
        if shared.any():
            if self._water:
                _water_shared_block(wl, proc, idx, h >> u64(40), shared, addr_list)
            else:
                shared_addr = wl._shared_addr
                h40 = (h >> u64(40)).tolist()
                idx_l = idx.tolist()
                for k in np.nonzero(shared)[0].tolist():
                    addr_list[k] = shared_addr(proc, idx_l[k], isw_list[k], h40[k])

        ht = _mix64_arr(u64(wl._h_think_base) ^ pi)
        extra = (ht & u64(0xFFFF)).astype(np.float64) < wl._think_thresh
        think = extra.astype(np.int64) + wl._think_whole
        return think.tolist(), isw_list, addr_list


class ZipfBlockGen:
    """Vectorized blocks for :class:`repro.workloads.datacenter.ZipfKV`."""

    def __init__(self, workload):
        self.wl = workload
        self._b_ref = _salt_base(workload, 0x2B1)
        self._b_think = _salt_base(workload, 0xD17E)
        self._cdf = _np.asarray(workload._cdf, dtype=_np.float64)
        self._perm = _np.asarray(workload._perm, dtype=_np.uint64)

    def __call__(self, proc: int, base: int, count: int) -> tuple:
        wl = self.wl
        np = _np
        u64 = np.uint64
        idx = np.arange(base, base + count, dtype=np.uint64)
        pi = u64(proc << 40) ^ idx

        h = _mix64_arr(self._b_ref ^ pi)
        is_write = (h & u64(0xFFFFF)).astype(np.float64) < wl._wf_thresh
        session = ((h >> u64(20)) & u64(0xFFFFF)).astype(np.float64) < wl._sf_thresh

        item_bytes = u64(wl.item_bytes)
        sess_items = u64(wl.session_items_per_client)
        client = idx % u64(wl.clients_per_proc)
        slot = (h >> u64(40)) % sess_items
        session_addr = (
            u64(wl._sessions[proc]) + (client * sess_items + slot) * item_bytes
        )

        u = ((h >> u64(11)) & u64(_MASK53)).astype(np.float64) / _U53
        rank = np.searchsorted(self._cdf, u, side="left")
        kv_addr = u64(wl._store) + self._perm[rank] * item_bytes

        addr = np.where(session, session_addr, kv_addr)

        # == Workload._think(proc, index, mean) with salt 0xD17E ==
        mean = wl._mean_think
        whole = int(mean)
        ht = _mix64_arr(self._b_think ^ pi)
        extra = (ht & u64(0xFFFF)).astype(np.float64) / 65536.0 < (mean - whole)
        think = extra.astype(np.int64) + whole
        return think.tolist(), is_write.tolist(), addr.tolist()


class ScanBlockGen:
    """Vectorized blocks for
    :class:`repro.workloads.datacenter.ScanAnalytics`."""

    def __init__(self, workload):
        self.wl = workload
        self._b_ref = _salt_base(workload, 0x5CA7)
        self._b_think = _salt_base(workload, 0xD17E)

    def __call__(self, proc: int, base: int, count: int) -> tuple:
        wl = self.wl
        np = _np
        u64 = np.uint64
        idx = np.arange(base, base + count, dtype=np.uint64)
        pi = u64(proc << 40) ^ idx

        h = _mix64_arr(self._b_ref ^ pi)
        is_write = (h & u64(0xFFFFF)).astype(np.float64) < wl._wf_thresh

        item_bytes = u64(wl.item_bytes)
        table_items = u64(wl._table_items)
        start = u64((proc * wl._table_items) // max(1, wl.n_procs))
        scan_addr = (
            u64(wl._table)
            + ((start + idx * u64(wl.stride_items)) % table_items) * item_bytes
        )
        if wl.table_writes:
            addr = scan_addr
        else:
            acc_addr = (
                u64(wl._acc[proc])
                + ((h >> u64(24)) % u64(wl.accumulator_items)) * item_bytes
            )
            addr = np.where(is_write, acc_addr, scan_addr)

        mean = wl._mean_think
        whole = int(mean)
        ht = _mix64_arr(self._b_think ^ pi)
        extra = (ht & u64(0xFFFF)).astype(np.float64) / 65536.0 < (mean - whole)
        think = extra.astype(np.int64) + whole
        return think.tolist(), is_write.tolist(), addr.tolist()


def make_block_generator(workload: Workload) -> BlockGenerator | None:
    """The vectorized generator for ``workload``, or ``None`` when the
    family has no vector kernel (synthetic and trace workloads)."""
    if _np is None:  # pragma: no cover - numpy-free installs
        return None
    from repro.workloads.datacenter import ScanAnalytics, ZipfKV
    from repro.workloads.splash import _CalibratedWorkload

    if isinstance(workload, _CalibratedWorkload):
        return CalibratedBlockGen(workload)
    if isinstance(workload, ZipfKV):
        return ZipfBlockGen(workload)
    if isinstance(workload, ScanAnalytics):
        return ScanBlockGen(workload)
    return None


def prebuild_routes(fabric) -> int:
    """Resolve every XY route of every subnet up front (the scalar
    fabric builds them lazily, one cache miss per new (src, dst) pair
    mid-run).  Pure memoization of a pure function: arrival arithmetic
    is untouched.  Returns the number of routes built."""
    mesh = fabric.mesh
    n = mesh.n_nodes
    built = 0
    for subnet in fabric._routes:
        routes = fabric._routes[subnet]
        for src in range(n):
            for dst in range(n):
                if src != dst and (src, dst) not in routes:
                    fabric._build_route(subnet, src, dst)
                    built += 1
    return built


class VectorBackend(KernelBackend):
    """numpy block generation + bulk fabric route prebuilding."""

    name = "vector"

    @classmethod
    def availability_error(cls) -> BackendUnavailable | None:
        if _np is None:
            return BackendUnavailable(
                "vector",
                "numpy is not installed",
                "install the vector extra: pip install 'repro[vector]'",
            )
        return None

    def attach(self, machine: "Machine") -> None:
        gen = make_block_generator(machine.workload)
        if gen is not None:
            for processor in machine.processors:
                for stream in processor.streams:
                    wrap_stream(stream, gen)
        prebuild_routes(machine.fabric)
