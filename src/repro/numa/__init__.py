"""A CC-NUMA comparison machine.

The paper's central architectural argument (Sections 1 and 3.1) is
that COMA beats CC-NUMA as a substrate for backward error recovery:

- in a CC-NUMA, memory blocks have *fixed physical homes*, so recovery
  data needs dedicated storage (a mirror on another node) and every
  modified block must be transferred at each recovery point — there is
  no pre-existing replication to reuse;
- after a permanent failure, the blocks homed on the dead node must be
  *re-homed with different physical addresses*, a much more complex
  reconfiguration than COMA's "reallocate anywhere".

This package implements that comparison point: a home-based
write-invalidate CC-NUMA built on the same kernel, mesh and cache
substrate, plus a mirror-based BER scheme (checkpoint = flush modified
blocks to a buddy node's mirror region; recovery = restore from
mirrors; permanent failure = re-home the dead node's partition with a
per-access translation penalty).  The A5 ablation bench quantifies the
paper's claim.
"""

from repro.numa.machine import NumaMachine, NumaRunResult
from repro.numa.protocol import NumaProtocol

__all__ = ["NumaMachine", "NumaRunResult", "NumaProtocol"]
