"""The CC-NUMA comparison machine.

Reuses the simulation kernel, mesh fabric, sectored caches, workloads
and statistics of the COMA machine, but with fixed-home memory and the
mirror-based BER scheme of :mod:`repro.numa.protocol`.  Deliberately
simpler than :class:`repro.machine.Machine` (no failure *survival* —
the point of the A5 ablation is to measure the *cost* of checkpointing
and of post-failure re-homing on a CC-NUMA, not to rebuild the paper's
whole fault tolerance on the weaker substrate).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass

from repro.config import ArchConfig, mesh_dimensions
from repro.memory.cache import SectoredCache
from repro.network.fabric import MeshFabric
from repro.network.topology import Mesh
from repro.numa.protocol import NumaProtocol
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.resources import ContentionPoint
from repro.sim.sync import MemberBarrier
from repro.stats.collectors import NodeStats
from repro.workloads.base import Workload


class NumaNode:
    """One CC-NUMA node: processor cache + its share of main memory."""

    def __init__(self, node_id: int, cfg: ArchConfig):
        self.node_id = node_id
        self.cache = SectoredCache(cfg.cache)
        self.mem_ctrl = ContentionPoint(name=f"numa{node_id}.mem", servers=4)
        self.alive = True
        self.stats = NodeStats(node_id)


@dataclass
class NumaRunResult:
    config: ArchConfig
    total_cycles: int
    refs: int
    n_checkpoints: int
    create_cycles: int
    ckpt_blocks_copied: int
    ckpt_bytes_copied: int
    rehoming_blocks: int
    rehoming_cycles: int
    translated_accesses: int
    wall_seconds: float


class NumaMachine:
    """Build and run one CC-NUMA machine."""

    def __init__(
        self,
        cfg: ArchConfig,
        workload: Workload,
        checkpointing: bool = True,
        fail_node_at: tuple[int, int] | None = None,
    ):
        self.cfg = cfg
        self.workload = workload
        self.engine = Engine()
        width, height = mesh_dimensions(cfg.n_nodes)
        self.mesh = Mesh(width, height)
        self.fabric = MeshFabric(self.mesh, cfg.latency)
        self.nodes = [NumaNode(i, cfg) for i in range(cfg.n_nodes)]
        self.protocol = NumaProtocol(self)
        self.checkpointing = checkpointing
        #: Optional (time, node) single permanent failure to measure
        #: the re-homing cost.
        self.fail_node_at = fail_node_at

        self._streams = workload.build_streams()
        # per-node assignment of stream indices (migration moves them)
        self._assigned: list[list[int]] = [[] for _ in range(cfg.n_nodes)]
        for idx in range(len(self._streams)):
            self._assigned[idx % cfg.n_nodes].append(idx)
        self._active: set[int] = set()
        self._ckpt_requested = False
        self._barrier: MemberBarrier | None = None
        self._leader = -1

        # results
        self.n_checkpoints = 0
        self.create_cycles = 0
        self.ckpt_blocks_copied = 0
        self.rehoming_blocks = 0
        self.rehoming_cycles = 0
        self.last_finish = 0
        self._started = False

    # -- processes ------------------------------------------------------------

    def _processor(self, node_id: int):
        protocol = self.protocol
        node = self.nodes[node_id]
        while True:
            if self._ckpt_requested and self._barrier is not None \
                    and node_id in self._barrier.expected:
                yield from self._participate(node_id)
                continue
            stream = self._stream_for(node_id)
            if stream is None or not node.alive:
                self._active.discard(node_id)
                if self._barrier is not None:
                    # a finished processor stops participating in any
                    # in-flight checkpoint barrier
                    self._barrier.remove_member(node_id)
                self.last_finish = max(self.last_finish, self.engine.now)
                return
            t_local = self.engine.now
            deadline = t_local + 256
            while t_local < deadline and not self._ckpt_requested:
                ref = stream.next_ref()
                if ref is None:
                    break
                issue = t_local + ref.think
                if ref.is_write:
                    t_local = protocol.write(node_id, ref.addr, issue)
                else:
                    t_local = protocol.read(node_id, ref.addr, issue)
            if t_local > self.engine.now:
                yield t_local - self.engine.now

    def _stream_for(self, node_id: int):
        for idx in self._assigned[node_id]:
            stream = self._streams[idx]
            if not stream.exhausted:
                return stream
        return None

    def _participate(self, node_id: int):
        barrier = self._barrier
        assert barrier is not None
        yield barrier.arrive(node_id)
        t0 = self.engine.now
        # every home flushes its modified blocks to its mirror; the
        # checkpoint completes when the slowest home is done
        done, copied = self.protocol.checkpoint_home(node_id, self.engine.now)
        self.ckpt_blocks_copied += copied
        if done > self.engine.now:
            yield done - self.engine.now
        yield barrier.arrive(node_id)
        if node_id == self._leader:
            # homes whose processors already finished still need a flush
            t = self.engine.now
            for home in range(self.cfg.n_nodes):
                if home in barrier.expected:
                    continue
                done, copied = self.protocol.checkpoint_home(home, t)
                self.ckpt_blocks_copied += copied
                t = max(t, done)
            if t > self.engine.now:
                yield t - self.engine.now
            self.create_cycles += self.engine.now - t0
            self.n_checkpoints += 1
            self._snapshot = {s.proc_id: s.position for s in self._streams}
            self._ckpt_requested = False

    def _scheduler(self):
        override = self.cfg.ft.checkpoint_period_override
        period_refs = self.cfg.checkpoint_period_references(
            self.workload.reference_density
        )
        refs_at_last = 0
        next_at = self.engine.now + (override or 0)
        while True:
            yield 2_000
            if not self._active:
                return
            if override is not None:
                if self.engine.now < next_at:
                    continue
            else:
                total = sum(ns.stats.refs for ns in self.nodes)
                if (total - refs_at_last) / max(1, len(self._active)) < period_refs:
                    continue
            self._ckpt_requested = True
            self._barrier = MemberBarrier(
                self.engine, set(self._active), name="numa-ckpt"
            )
            self._leader = min(self._active)
            while self._ckpt_requested:
                yield 500
            refs_at_last = sum(ns.stats.refs for ns in self.nodes)
            next_at = self.engine.now + (override or 0)

    def _fault(self):
        assert self.fail_node_at is not None
        at, node_id = self.fail_node_at
        delay = at - self.engine.now
        if delay > 0:
            yield delay
        if not self._active:
            return
        node = self.nodes[node_id]
        node.alive = False
        node.cache.invalidate_all()
        # global rollback to the mirrors, then re-home the partition
        for n in self.nodes:
            n.cache.invalidate_all()
        self.protocol.recovery_reset()
        for stream in self._streams:
            stream.rewind_to(self._snapshot.get(stream.proc_id, 0))
        t, moved = self.protocol.rehome_partition(node_id, self.engine.now)
        self.rehoming_blocks += moved
        self.rehoming_cycles += t - self.engine.now
        # the dead node's work restarts on its buddy
        if self._assigned[node_id]:
            buddy = self.protocol.mirror_of(node_id)
            self._assigned[buddy].extend(self._assigned[node_id])
            self._assigned[node_id] = []
        if t > self.engine.now:
            yield t - self.engine.now

    # -- run --------------------------------------------------------------------

    def run(self) -> NumaRunResult:
        if self._started:
            raise RuntimeError("machine already ran")
        self._started = True
        wall0 = _time.perf_counter()
        self._snapshot = {s.proc_id: s.position for s in self._streams}
        for node_id in range(self.cfg.n_nodes):
            if node_id < len(self._streams):
                self._active.add(node_id)
            Process(self.engine, self._processor(node_id), name=f"numa-cpu{node_id}")
        if self.checkpointing:
            Process(self.engine, self._scheduler(), name="numa-sched")
        if self.fail_node_at is not None:
            Process(self.engine, self._fault(), name="numa-fault")
        self.engine.run()
        return NumaRunResult(
            config=self.cfg,
            total_cycles=self.last_finish,
            refs=sum(n.stats.refs for n in self.nodes),
            n_checkpoints=self.n_checkpoints,
            create_cycles=self.create_cycles,
            ckpt_blocks_copied=self.ckpt_blocks_copied,
            ckpt_bytes_copied=self.ckpt_blocks_copied * self.cfg.item_bytes,
            rehoming_blocks=self.rehoming_blocks,
            rehoming_cycles=self.rehoming_cycles,
            translated_accesses=self.protocol.translated_accesses,
            wall_seconds=_time.perf_counter() - wall0,
        )
