"""Home-based write-invalidate coherence for the CC-NUMA machine.

Blocks (128 B, same granularity as the COMA items) have fixed homes:
``home(block) = page(block) % n_nodes``.  The home's memory always
backs the block; the directory at the home tracks cached copies:

===========  =====================================================
``UNCACHED``  no cached copies; memory is current
``SHARED``    read-only copies in one or more caches; memory current
``MODIFIED``  exactly one cache holds a dirty copy; memory is stale
===========  =====================================================

The BER extension (mirror-based, Section 3.1's CC-NUMA strawman):
each home partition is mirrored on a buddy node.  A recovery point
*recalls* every dirty cached block, then copies every block modified
since the last recovery point to the mirror.  After a permanent
failure the mirror becomes the new home — but unlike COMA, the blocks
change physical address, so every later access to a re-homed block
pays a translation penalty, and the partition must be re-mirrored
wholesale to restore failure independence.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.config import ArchConfig
from repro.network.fabric import MeshFabric
from repro.network.message import MessageKind
from repro.network.topology import Subnet

if TYPE_CHECKING:  # pragma: no cover
    from repro.numa.machine import NumaMachine, NumaNode


class BlockState(enum.Enum):
    UNCACHED = "uncached"
    SHARED = "shared"
    MODIFIED = "modified"


@dataclass
class BlockEntry:
    """Directory entry at the block's home."""

    state: BlockState = BlockState.UNCACHED
    sharers: set[int] = field(default_factory=set)
    owner: int | None = None  # cache holding the MODIFIED copy


#: Extra cycles per access to a re-homed block (software address
#: translation after a permanent failure re-homed the partition).
TRANSLATION_PENALTY = 6


class NumaProtocol:
    """The CC-NUMA coherence protocol plus its BER bookkeeping."""

    name = "cc-numa"

    def __init__(self, machine: "NumaMachine"):
        self.machine = machine
        self.cfg: ArchConfig = machine.cfg
        self.fabric: MeshFabric = machine.fabric
        # directory[home][block] -> BlockEntry
        self._directory: list[dict[int, BlockEntry]] = [
            {} for _ in range(self.cfg.n_nodes)
        ]
        # blocks modified since the last recovery point, per home
        self.dirty_since_ckpt: list[set[int]] = [
            set() for _ in range(self.cfg.n_nodes)
        ]
        # partition re-homing after permanent failures: original home
        # node -> node now serving it (identity when no failure)
        self.home_map: list[int] = list(range(self.cfg.n_nodes))
        #: Blocks homed on a re-homed partition pay TRANSLATION_PENALTY.
        self.translated_accesses = 0

    # -- homes ------------------------------------------------------------

    def original_home(self, block: int) -> int:
        return (block // self.cfg.items_per_page) % self.cfg.n_nodes

    def home_of(self, block: int) -> int:
        return self.home_map[self.original_home(block)]

    def mirror_of(self, home: int) -> int:
        """The buddy holding this partition's recovery mirror."""
        nodes = self.machine.nodes
        buddy = (home + 1) % self.cfg.n_nodes
        while not nodes[buddy].alive or buddy == home:
            buddy = (buddy + 1) % self.cfg.n_nodes
        return buddy

    def entry(self, block: int) -> BlockEntry:
        directory = self._directory[self.original_home(block)]
        found = directory.get(block)
        if found is None:
            found = BlockEntry()
            directory[block] = found
        return found

    # -- processor operations ------------------------------------------------

    def read(self, node_id: int, addr: int, now: int) -> int:
        node = self.machine.nodes[node_id]
        stats = node.stats
        stats.refs += 1
        stats.reads += 1
        if node.cache.read_probe(addr):
            return now + self.cfg.latency.cache_hit
        stats.am_read_accesses += 1
        stats.am_read_misses += 1
        block = self.cfg.item_of(addr)
        t = self._fetch(node_id, block, addr, now, exclusive=False)
        node.cache.fill(addr, dirty=False)
        return t

    def write(self, node_id: int, addr: int, now: int) -> int:
        node = self.machine.nodes[node_id]
        stats = node.stats
        stats.refs += 1
        stats.writes += 1
        if node.cache.write_probe(addr):
            return now + self.cfg.latency.cache_hit
        stats.am_write_accesses += 1
        stats.am_write_misses += 1
        block = self.cfg.item_of(addr)
        t = self._fetch(node_id, block, addr, now, exclusive=True)
        node.cache.fill(addr, dirty=True)
        entry = self.entry(block)
        entry.state = BlockState.MODIFIED
        entry.owner = node_id
        entry.sharers = set()
        self.dirty_since_ckpt[self.original_home(block)].add(block)
        return t

    def _fetch(
        self, node_id: int, block: int, addr: int, now: int, exclusive: bool
    ) -> int:
        lat = self.cfg.latency
        machine = self.machine
        home = self.home_of(block)
        t = machine.nodes[node_id].mem_ctrl.occupy(now, lat.local_am_fill)
        if self.home_map[self.original_home(block)] != self.original_home(block):
            # re-homed partition: software translation on every access
            t += TRANSLATION_PENALTY
            self.translated_accesses += 1
        entry = self.entry(block)
        if home != node_id:
            t += lat.req_launch
            t = self.fabric.control(
                node_id, home, Subnet.REQUEST, t, MessageKind.READ_REQ, block
            )
        t = machine.nodes[home].mem_ctrl.occupy(t, lat.remote_am_service)

        # recall / invalidate cached copies as needed
        if entry.state is BlockState.MODIFIED and entry.owner != node_id:
            owner = entry.owner
            assert owner is not None
            t = self.fabric.control(
                home, owner, Subnet.REQUEST, t, MessageKind.INVALIDATE, block
            )
            owner_node = machine.nodes[owner]
            owner_node.cache.invalidate_range(
                block * self.cfg.item_bytes, self.cfg.item_bytes
            )
            t = self.fabric.data(
                owner, home, self.cfg.item_bytes, t, MessageKind.DATA_REPLY, block
            )
            entry.state = BlockState.SHARED
            entry.owner = None
        if exclusive:
            for sharer in sorted(entry.sharers):
                if sharer == node_id:
                    continue
                sh = machine.nodes[sharer]
                if not sh.alive:
                    continue
                ti = self.fabric.control(
                    home, sharer, Subnet.REQUEST, t, MessageKind.INVALIDATE, block
                )
                sh.cache.invalidate_range(
                    block * self.cfg.item_bytes, self.cfg.item_bytes
                )
                t = max(
                    t,
                    self.fabric.control(
                        sharer, node_id, Subnet.REPLY, ti,
                        MessageKind.INVALIDATE_ACK, block,
                    ),
                )
            entry.sharers = set()

        # data reply from the home's memory
        if home != node_id:
            t = self.fabric.data(
                home, node_id, self.cfg.item_bytes, t, MessageKind.DATA_REPLY, block
            )
            t += lat.fill
        if not exclusive:
            entry.sharers.add(node_id)
            if entry.state is BlockState.UNCACHED:
                entry.state = BlockState.SHARED
        return t

    # -- BER: recovery points ----------------------------------------------------

    def checkpoint_home(self, home: int, now: int) -> tuple[int, int]:
        """Copy this home's modified blocks to its mirror.

        Returns (completion_time, blocks_copied).  Unlike the COMA's
        ECP, *every* modified block must be transferred — there is no
        pre-existing replication to promote.
        """
        machine = self.machine
        lat = self.cfg.latency
        mirror = self.mirror_of(home)
        t = now
        copied = 0
        for block in sorted(self.dirty_since_ckpt[home]):
            entry = self.entry(block)
            if entry.state is BlockState.MODIFIED and entry.owner is not None:
                # recall the dirty cached copy first
                owner = entry.owner
                t = self.fabric.control(
                    home, owner, Subnet.REQUEST, t, MessageKind.INVALIDATE, block
                )
                t = self.fabric.data(
                    owner, home, self.cfg.item_bytes, t, MessageKind.DATA_REPLY, block
                )
                machine.nodes[owner].cache.clean_range(
                    block * self.cfg.item_bytes, self.cfg.item_bytes
                )
                entry.state = BlockState.SHARED
                entry.sharers.add(owner)
                entry.owner = None
            t = machine.nodes[home].mem_ctrl.occupy(t, lat.remote_am_service)
            t = self.fabric.data(
                home, mirror, self.cfg.item_bytes, t, MessageKind.INJECT_DATA, block
            )
            copied += 1
        self.dirty_since_ckpt[home] = set()
        return t, copied

    # -- BER: failure handling -----------------------------------------------------

    def rehome_partition(self, dead: int, now: int) -> tuple[int, int]:
        """A permanent failure: the mirror becomes the new home, the
        partition is re-mirrored wholesale, and every later access pays
        the translation penalty.

        Returns (completion_time, blocks_transferred)."""
        machine = self.machine
        lat = self.cfg.latency
        for original, current in enumerate(self.home_map):
            if current != dead:
                continue
            new_home = self.mirror_of(dead)
            self.home_map[original] = new_home
            # re-mirror every block of the partition (failure
            # independence must be restored)
            new_mirror = self.mirror_of(new_home)
            t = now
            moved = 0
            for block in sorted(self._directory[original]):
                t = machine.nodes[new_home].mem_ctrl.occupy(t, lat.remote_am_service)
                t = self.fabric.data(
                    new_home, new_mirror, self.cfg.item_bytes, t,
                    MessageKind.INJECT_DATA, block,
                )
                moved += 1
                # all cached copies died with the caches (global rollback)
                entry = self._directory[original][block]
                entry.state = BlockState.UNCACHED
                entry.sharers = set()
                entry.owner = None
            return t, moved
        return now, 0

    def recovery_reset(self) -> None:
        """Global rollback: caches are gone; memory is restored from
        the mirrors (state-wise: everything uncached, nothing dirty)."""
        for directory in self._directory:
            for entry in directory.values():
                entry.state = BlockState.UNCACHED
                entry.sharers = set()
                entry.owner = None
        for dirty in self.dirty_since_ckpt:
            dirty.clear()
