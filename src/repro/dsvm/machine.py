"""The recoverable-DSVM machine.

A multicomputer / network of workstations: no hardware coherence, page
faults handled in software, pages moved as 4 KB messages.  Reuses the
simulation kernel and the workload generators (addresses map to 4 KB
pages); processors run reference streams exactly like the COMA
machine's, so recovery-point establishment, rollback and
re-replication can be exercised end to end.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

from repro.dsvm.protocol import DsvmProtocol, PageState
from repro.sim.engine import Engine
from repro.sim.process import Process
from repro.sim.sync import MemberBarrier
from repro.stats.collectors import NodeStats
from repro.workloads.base import Workload


@dataclass(frozen=True)
class DsvmConfig:
    """Software SVM cost model (a 1990s multicomputer node)."""

    n_nodes: int = 8
    page_bytes: int = 4096
    #: Page-fault trap + handler entry/exit.
    fault_overhead_cycles: int = 600
    #: Per-message software overhead (send + receive paths).
    msg_overhead_cycles: int = 400
    #: Transferring one 4 KB page over the interconnect.
    page_transfer_cycles: int = 1200
    #: A purely local protocol action.
    local_hop_cycles: int = 40
    #: Promote existing read copies to Pre-Commit2 instead of sending
    #: the page (the ECP's Section 3.3 optimisation, at page grain).
    reuse_read_copies: bool = True
    #: Recovery-point period, in references per processor.
    checkpoint_period_refs: int = 20_000

    def page_of(self, addr: int) -> int:
        return addr // self.page_bytes


@dataclass
class DsvmRunResult:
    config: DsvmConfig
    total_cycles: int
    refs: int
    n_checkpoints: int
    n_recoveries: int
    create_cycles: int
    pages_replicated: int
    pages_reused: int
    node_stats: list[NodeStats] = field(default_factory=list)

    @property
    def read_fault_rate(self) -> float:
        reads = sum(ns.reads for ns in self.node_stats)
        faults = sum(ns.am_read_misses for ns in self.node_stats)
        return faults / reads if reads else 0.0


class DsvmMachine:
    """Build and run one recoverable-DSVM system."""

    def __init__(
        self,
        cfg: DsvmConfig,
        workload: Workload,
        checkpointing: bool = True,
        fail_node_at: tuple[int, int] | None = None,
    ):
        self.cfg = cfg
        self.workload = workload
        self.engine = Engine()
        self.protocol = DsvmProtocol(self)
        self.node_stats = [NodeStats(i) for i in range(cfg.n_nodes)]
        self._alive = [True] * cfg.n_nodes
        self.checkpointing = checkpointing
        self.fail_node_at = fail_node_at

        self._streams = workload.build_streams()
        # per-node assignment of stream indices (migration moves them)
        self._assigned: list[list[int]] = [[] for _ in range(cfg.n_nodes)]
        for idx in range(len(self._streams)):
            self._assigned[idx % cfg.n_nodes].append(idx)
        self._active: set[int] = set()
        self._ckpt_requested = False
        self._recovery_requested = False
        self._barrier: MemberBarrier | None = None
        self._leader = -1
        self._snapshot: dict[int, int] = {}
        self._participated: list[int] = [-1] * cfg.n_nodes
        self._epoch = 0

        self.n_checkpoints = 0
        self.n_recoveries = 0
        self.create_cycles = 0
        self.pages_replicated = 0
        self.pages_reused = 0
        self.last_finish = 0
        self._started = False

    # -- callbacks for the protocol -----------------------------------------------

    def stats_of(self, node: int) -> NodeStats:
        return self.node_stats[node]

    def alive(self, node: int) -> bool:
        return self._alive[node]

    # -- processes -------------------------------------------------------------------

    def _stream_for(self, node_id: int):
        """The next unexhausted stream assigned to this node, or None."""
        for idx in self._assigned[node_id]:
            stream = self._streams[idx]
            if not stream.exhausted:
                return stream
        return None

    def _processor(self, node_id: int):
        protocol = self.protocol
        cfg = self.cfg
        while True:
            if not self._alive[node_id]:
                self._active.discard(node_id)
                if self._barrier is not None:
                    self._barrier.remove_member(node_id)
                return
            pending = (
                (self._ckpt_requested or self._recovery_requested)
                and self._barrier is not None
                and node_id in self._barrier.expected
                and self._participated[node_id] != self._epoch
            )
            if pending:
                self._participated[node_id] = self._epoch
                yield from self._participate(node_id)
                continue
            stream = self._stream_for(node_id)
            if stream is None or stream.exhausted:
                self._active.discard(node_id)
                if self._barrier is not None:
                    self._barrier.remove_member(node_id)
                self.last_finish = max(self.last_finish, self.engine.now)
                return
            ref = stream.next_ref()
            page = cfg.page_of(ref.addr)
            issue = self.engine.now + ref.think
            if ref.is_write:
                done = protocol.write(node_id, page, issue)
            else:
                done = protocol.read(node_id, page, issue)
            if done > self.engine.now:
                yield done - self.engine.now

    def _participate(self, node_id: int):
        barrier = self._barrier
        assert barrier is not None
        recovery = self._recovery_requested
        yield barrier.arrive(node_id)
        t0 = self.engine.now
        if recovery:
            self.protocol.recovery_scan(node_id)
            yield 200  # table scan
        else:
            done, replicated, reused = self.protocol.create_phase(
                node_id, self.engine.now
            )
            self.pages_replicated += replicated
            self.pages_reused += reused
            if done > self.engine.now:
                yield done - self.engine.now
        yield barrier.arrive(node_id)
        if node_id == self._leader:
            if recovery:
                # nodes without running work still hold pages: scan them
                for nid in range(self.cfg.n_nodes):
                    if self._alive[nid] and nid not in barrier.expected:
                        self.protocol.recovery_scan(nid)
                singletons = self.protocol.rebuild_managers()
                t = self.engine.now
                for page in singletons:
                    t = self.protocol.rereplicate(page, t)
                if t > self.engine.now:
                    yield t - self.engine.now
                for stream in self._streams:
                    stream.rewind_to(self._snapshot.get(stream.proc_id, 0))
                for nid in range(self.cfg.n_nodes):
                    if self._alive[nid] and self._stream_for(nid) is not None:
                        self._active.add(nid)
                self.n_recoveries += 1
                self._recovery_requested = False
            else:
                for nid in range(self.cfg.n_nodes):
                    if self._alive[nid]:
                        self.protocol.commit_phase(nid)
                self.create_cycles += self.engine.now - t0
                self.n_checkpoints += 1
                self._snapshot = {
                    s.proc_id: s.position for s in self._streams
                }
                self._ckpt_requested = False

    def _scheduler(self):
        refs_at_last = 0
        while True:
            yield 2_000
            if not self._active:
                return
            if self._ckpt_requested or self._recovery_requested:
                continue
            total = sum(ns.refs for ns in self.node_stats)
            live = max(1, len(self._active))
            if (total - refs_at_last) / live < self.cfg.checkpoint_period_refs:
                continue
            self._request(recovery=False)
            while self._ckpt_requested:
                yield 500
            refs_at_last = sum(ns.refs for ns in self.node_stats)

    def _request(self, recovery: bool) -> None:
        self._epoch += 1
        members = {
            nid for nid in self._active if self._alive[nid]
        } or {nid for nid in range(self.cfg.n_nodes) if self._alive[nid]}
        self._barrier = MemberBarrier(self.engine, members, name="dsvm")
        self._leader = min(members)
        if recovery:
            self._recovery_requested = True
        else:
            self._ckpt_requested = True

    def _fault(self):
        assert self.fail_node_at is not None
        at, node_id = self.fail_node_at
        if at > self.engine.now:
            yield at - self.engine.now
        if not self._active:
            return
        self._alive[node_id] = False
        self.protocol.page_tables[node_id].clear()
        self._active.discard(node_id)
        if self._barrier is not None:
            self._barrier.remove_member(node_id)
            if node_id == self._leader and self._barrier.expected:
                self._leader = min(self._barrier.expected)
        # the dead node's work migrates to a live node that still runs
        if self._assigned[node_id] and self._active:
            buddy = min(self._active)
            self._assigned[buddy].extend(self._assigned[node_id])
            self._assigned[node_id] = []
        yield 500  # detection
        # let an in-flight recovery point drain before rolling back
        while self._ckpt_requested:
            yield 200
        self._request(recovery=True)

    # -- run ---------------------------------------------------------------------------

    def run(self) -> DsvmRunResult:
        if self._started:
            raise RuntimeError("machine already ran")
        self._started = True
        self._snapshot = {s.proc_id: s.position for s in self._streams}
        for node_id in range(self.cfg.n_nodes):
            if self._stream_for(node_id) is not None:
                self._active.add(node_id)
            Process(self.engine, self._processor(node_id), name=f"dsvm{node_id}")
        if self.checkpointing:
            Process(self.engine, self._scheduler(), name="dsvm-sched")
        if self.fail_node_at is not None:
            Process(self.engine, self._fault(), name="dsvm-fault")
        self.engine.run()
        return DsvmRunResult(
            config=self.cfg,
            total_cycles=self.last_finish,
            refs=sum(ns.refs for ns in self.node_stats),
            n_checkpoints=self.n_checkpoints,
            n_recoveries=self.n_recoveries,
            create_cycles=self.create_cycles,
            pages_replicated=self.pages_replicated,
            pages_reused=self.pages_reused,
            node_stats=self.node_stats,
        )
