"""A recoverable distributed shared virtual memory (DSVM).

The paper's conclusion: "Our approach is more generally applicable to
architectures implementing a shared memory on top of distributed
physical memories.  In particular, it can be used to implement a
recoverable distributed shared virtual memory (DSVM) on top of a
multicomputer or a network of workstations.  We have already
implemented a recoverable DSVM based on the ECP on the Intel Paragon
multicomputer and on a network of workstations running Chorus
micro-kernel [15]."

This package is that transposition: the same extended-coherence idea at
*page* granularity with *software* costs — a Li/Hudak-style
fixed-distributed-manager write-invalidate SVM whose protocol grows the
``Read-CK`` / ``Inv-CK`` / ``Pre-Commit`` recovery states, two-phase
recovery-point establishment, restoration, and post-failure
re-replication.  No hardware support is assumed: page faults cost
microseconds and pages travel as 4 KB messages.
"""

from repro.dsvm.machine import DsvmConfig, DsvmMachine, DsvmRunResult
from repro.dsvm.protocol import DsvmProtocol, PageState

__all__ = [
    "DsvmConfig",
    "DsvmMachine",
    "DsvmRunResult",
    "DsvmProtocol",
    "PageState",
]
