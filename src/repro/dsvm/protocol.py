"""Page-grain extended coherence for the recoverable DSVM.

A fixed-distributed-manager, write-invalidate shared virtual memory
(Li/Hudak) whose per-node page states mirror the ECP's item states:

==============  ====================================================
``INVALID``      no copy
``READ``         read-only copy (in the manager's copyset)
``WRITE``        the single writable copy (the owner)
``READ_CK1/2``   the two recovery copies of an unmodified page —
                 readable, CK1 serves faults
``INV_CK1/2``    the two recovery copies of a modified page —
                 inaccessible, kept for rollback
``PRE_COMMIT1/2`` transient recovery copies during establishment
==============  ====================================================

The manager of a page (``page % n_nodes``) tracks its owner and
copyset; costs are software costs (page-fault handling in the µs range,
4 KB page transfers).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.dsvm.machine import DsvmMachine


class PageState(enum.Enum):
    INVALID = "invalid"
    READ = "read"
    WRITE = "write"
    READ_CK1 = "read_ck1"
    READ_CK2 = "read_ck2"
    INV_CK1 = "inv_ck1"
    INV_CK2 = "inv_ck2"
    PRE_COMMIT1 = "pre_commit1"
    PRE_COMMIT2 = "pre_commit2"

    @property
    def is_readable(self) -> bool:
        return self in (
            PageState.READ, PageState.WRITE, PageState.READ_CK1, PageState.READ_CK2
        )

    @property
    def is_recovery(self) -> bool:
        return self in (
            PageState.READ_CK1, PageState.READ_CK2,
            PageState.INV_CK1, PageState.INV_CK2,
        )


@dataclass
class ManagerEntry:
    """Manager-side record for one page."""

    owner: int | None = None        # WRITE holder, or READ_CK1 holder
    copyset: set[int] = field(default_factory=set)
    partner: int | None = None      # CK2 / PRE_COMMIT2 holder


class DsvmProtocol:
    """The recoverable SVM protocol."""

    def __init__(self, machine: "DsvmMachine"):
        self.machine = machine
        self.cfg = machine.cfg
        n = self.cfg.n_nodes
        # per-node page tables: page -> PageState
        self.page_tables: list[dict[int, PageState]] = [{} for _ in range(n)]
        self._managers: list[dict[int, ManagerEntry]] = [{} for _ in range(n)]
        # pages modified since the last recovery point, per owner node
        self.modified: list[set[int]] = [set() for _ in range(n)]

    # -- helpers ------------------------------------------------------------

    def manager_of(self, page: int) -> int:
        return page % self.cfg.n_nodes

    def entry(self, page: int) -> ManagerEntry:
        managers = self._managers[self.manager_of(page)]
        found = managers.get(page)
        if found is None:
            found = ManagerEntry()
            managers[page] = found
        return found

    def state(self, node: int, page: int) -> PageState:
        return self.page_tables[node].get(page, PageState.INVALID)

    def set_state(self, node: int, page: int, state: PageState) -> None:
        if state is PageState.INVALID:
            self.page_tables[node].pop(page, None)
        else:
            self.page_tables[node][page] = state

    def _msg(self, src: int, dst: int, now: int, payload_pages: int = 0) -> int:
        """Software message cost: per-message overhead + page payload."""
        cfg = self.cfg
        if src == dst:
            return now + cfg.local_hop_cycles
        return (
            now
            + cfg.msg_overhead_cycles
            + payload_pages * cfg.page_transfer_cycles
        )

    # -- faults -------------------------------------------------------------------

    def read(self, node: int, page: int, now: int) -> int:
        stats = self.machine.stats_of(node)
        stats.refs += 1
        stats.reads += 1
        if self.state(node, page).is_readable:
            return now + 1
        stats.am_read_misses += 1
        return self._read_fault(node, page, now + self.cfg.fault_overhead_cycles)

    def write(self, node: int, page: int, now: int) -> int:
        stats = self.machine.stats_of(node)
        stats.refs += 1
        stats.writes += 1
        if self.state(node, page) is PageState.WRITE:
            return now + 1
        stats.am_write_misses += 1
        return self._write_fault(node, page, now + self.cfg.fault_overhead_cycles)

    def _read_fault(self, node: int, page: int, now: int) -> int:
        # a local Inv-CK copy must first be pushed elsewhere (Table 1)
        local = self.state(node, page)
        if local in (PageState.INV_CK1, PageState.INV_CK2):
            now = self._push_recovery_copy(node, page, local, now)
        manager = self.manager_of(page)
        entry = self.entry(page)
        t = self._msg(node, manager, now)
        if entry.owner is None:
            # first touch: the faulting node materialises the page
            entry.owner = node
            t = self._msg(manager, node, t)
            self.set_state(node, page, PageState.WRITE)
            self.modified[node].add(page)
            return t
        t = self._msg(manager, entry.owner, t)
        t = self._msg(entry.owner, node, t, payload_pages=1)
        owner_state = self.state(entry.owner, page)
        if owner_state is PageState.WRITE:
            self.set_state(entry.owner, page, PageState.READ)
            entry.copyset.add(entry.owner)
        entry.copyset.add(node)
        self.set_state(node, page, PageState.READ)
        return t

    def _write_fault(self, node: int, page: int, now: int) -> int:
        local = self.state(node, page)
        if local.is_recovery:
            now = self._push_recovery_copy(node, page, local, now)
        manager = self.manager_of(page)
        entry = self.entry(page)
        t = self._msg(node, manager, now)
        if entry.owner is None:
            entry.owner = node
            t = self._msg(manager, node, t)
            self.set_state(node, page, PageState.WRITE)
            self.modified[node].add(page)
            return t
        old_owner = entry.owner
        owner_state = self.state(old_owner, page)
        # invalidate the copyset
        t_acks = t
        for reader in sorted(entry.copyset):
            if reader == node:
                continue
            ti = self._msg(manager, reader, t)
            self.set_state(reader, page, PageState.INVALID)
            t_acks = max(t_acks, self._msg(reader, node, ti))
        entry.copyset.clear()
        # fetch the page from the serving copy
        t = self._msg(manager, old_owner, t)
        had_copy = self.state(node, page) is PageState.READ
        t = self._msg(old_owner, node, t, payload_pages=0 if had_copy else 1)
        if owner_state is PageState.WRITE:
            self.set_state(old_owner, page, PageState.INVALID)
        elif owner_state is PageState.READ_CK1:
            # the recovery pair degrades, exactly as in the ECP
            self.set_state(old_owner, page, PageState.INV_CK1)
            if entry.partner is not None:
                tp = self._msg(manager, entry.partner, t)
                self.set_state(entry.partner, page, PageState.INV_CK2)
                t_acks = max(t_acks, self._msg(entry.partner, node, tp))
        entry.owner = node
        self.set_state(node, page, PageState.WRITE)
        self.modified[node].add(page)
        return max(t, t_acks)

    def _push_recovery_copy(
        self, node: int, page: int, state: PageState, now: int
    ) -> int:
        """Move a local recovery copy to another node before the fault
        proceeds (the DSVM analogue of a Table 1 injection)."""
        target = self._find_host(page, exclude={node})
        t = self._msg(node, target, now, payload_pages=1)
        self.set_state(target, page, state)
        self.set_state(node, page, PageState.INVALID)
        entry = self.entry(page)
        if entry.partner == node:
            entry.partner = target
        if entry.owner == node:
            entry.owner = target
        self.machine.stats_of(node).injections["dsvm_push"] += 1
        return t

    def _find_host(self, page: int, exclude: set[int]) -> int:
        """A node with no conflicting copy of the page (memory is
        virtual, so any live node with address space can host)."""
        for candidate in range(self.cfg.n_nodes):
            if candidate in exclude:
                continue
            if not self.machine.alive(candidate):
                continue
            if self.state(candidate, page) in (PageState.INVALID, PageState.READ):
                return candidate
        raise RuntimeError(f"no host for page {page}")

    # -- recovery points ----------------------------------------------------------

    def create_phase(self, node: int, now: int) -> tuple[int, int, int]:
        """Replicate this node's modified pages (two-phase, step 1).

        Returns (completion, replicated, reused)."""
        t = now
        replicated = 0
        reused = 0
        for page in sorted(self.modified[node]):
            state = self.state(node, page)
            entry = self.entry(page)
            # the node owns the page's current value either exclusively
            # (WRITE) or as the owner of a read-shared page
            if entry.owner != node or state not in (PageState.WRITE, PageState.READ):
                continue
            self.set_state(node, page, PageState.PRE_COMMIT1)
            live_readers = [
                r for r in sorted(entry.copyset) if self.machine.alive(r) and r != node
            ]
            if live_readers and self.cfg.reuse_read_copies:
                target = live_readers[0]
                t = self._msg(node, target, t)       # promote in place
                entry.copyset.discard(target)
                reused += 1
            else:
                target = self._find_host(page, exclude={node})
                t = self._msg(node, target, t, payload_pages=1)
                replicated += 1
            self.set_state(target, page, PageState.PRE_COMMIT2)
            entry.partner = target
        return t, replicated, reused

    def commit_phase(self, node: int) -> int:
        """Step 2, local: promote Pre-Commit, discard old Inv-CK."""
        changed = 0
        table = self.page_tables[node]
        for page, state in list(table.items()):
            if state is PageState.PRE_COMMIT1:
                table[page] = PageState.READ_CK1
                self.entry(page).owner = node
                changed += 1
            elif state is PageState.PRE_COMMIT2:
                table[page] = PageState.READ_CK2
                changed += 1
            elif state in (PageState.INV_CK1, PageState.INV_CK2):
                del table[page]
                changed += 1
        self.modified[node] = set()
        return changed

    def recovery_scan(self, node: int) -> None:
        """Rollback: drop current pages, restore Inv-CK to Read-CK."""
        table = self.page_tables[node]
        for page, state in list(table.items()):
            if state in (PageState.READ, PageState.WRITE,
                         PageState.PRE_COMMIT1, PageState.PRE_COMMIT2):
                del table[page]
            elif state is PageState.INV_CK1:
                table[page] = PageState.READ_CK1
            elif state is PageState.INV_CK2:
                table[page] = PageState.READ_CK2
        self.modified[node] = set()

    def rebuild_managers(self) -> list[int]:
        """Reconstruct manager entries from surviving recovery copies;
        returns pages reduced to a single copy."""
        for managers in self._managers:
            managers.clear()
        primaries: dict[int, int] = {}
        secondaries: dict[int, int] = {}
        for node in range(self.cfg.n_nodes):
            if not self.machine.alive(node):
                self.page_tables[node].clear()
                continue
            for page, state in self.page_tables[node].items():
                if state is PageState.READ_CK1:
                    primaries[page] = node
                elif state is PageState.READ_CK2:
                    secondaries[page] = node
        singletons = []
        for page in set(primaries) | set(secondaries):
            ck1 = primaries.get(page)
            ck2 = secondaries.get(page)
            if ck1 is None:
                ck1, ck2 = ck2, None
                self.set_state(ck1, page, PageState.READ_CK1)
            entry = self.entry(page)
            entry.owner = ck1
            entry.copyset = set()
            entry.partner = ck2
            if ck2 is None:
                singletons.append(page)
        return sorted(singletons)

    def rereplicate(self, page: int, now: int) -> int:
        """Reconfiguration: restore the pair for a singleton page."""
        entry = self.entry(page)
        holder = entry.owner
        assert holder is not None
        target = self._find_host(page, exclude={holder})
        t = self._msg(holder, target, now, payload_pages=1)
        self.set_state(target, page, PageState.READ_CK2)
        entry.partner = target
        return t
