"""Discrete-event simulation kernel.

A small CSIM-like substrate (the paper builds on the SPAM kernel and the
CSIM library): an event heap with integer-cycle time, generator-based
lightweight processes, condition events, barriers and queueing
resources.  Everything above it — network, memory system, protocols —
is expressed in terms of these primitives.
"""

from repro.sim.engine import Engine, SimulationError
from repro.sim.process import Process, ProcessState
from repro.sim.sync import Barrier, EventFlag, Semaphore
from repro.sim.resources import Resource, ContentionPoint

__all__ = [
    "Engine",
    "SimulationError",
    "Process",
    "ProcessState",
    "Barrier",
    "EventFlag",
    "Semaphore",
    "Resource",
    "ContentionPoint",
]
