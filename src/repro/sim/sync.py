"""Synchronisation primitives for simulated processes."""

from __future__ import annotations

from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine
    from repro.sim.process import Process


class EventFlag:
    """A one-shot (but re-armable) condition processes can wait on.

    ``fire(value)`` wakes every waiter, sending ``value`` into each
    waiting generator.  After firing, the flag stays *set*: a process
    that waits on an already-set flag resumes immediately with the fired
    value.  ``reset()`` re-arms the flag.
    """

    __slots__ = ("engine", "name", "_waiters", "_set", "_value")

    def __init__(self, engine: "Engine", name: str = "event"):
        self.engine = engine
        self.name = name
        self._waiters: list["Process"] = []
        self._set = False
        self._value: Any = None

    # waitable protocol -------------------------------------------------

    def _subscribe(self, process: "Process") -> None:
        if self._set:
            process._resume(self._value)
        else:
            self._waiters.append(process)

    # public API ---------------------------------------------------------

    def fire(self, value: Any = None) -> None:
        """Set the flag and wake all waiters."""
        self._set = True
        self._value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._resume(value)

    def reset(self) -> None:
        self._set = False
        self._value = None

    @property
    def is_set(self) -> bool:
        return self._set

    @property
    def value(self) -> Any:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "set" if self._set else f"{len(self._waiters)} waiting"
        return f"<EventFlag {self.name} {state}>"


class Barrier:
    """A reusable synchronisation barrier for ``parties`` processes.

    Each participant yields ``barrier.arrive()``.  When the last party
    arrives, every waiter resumes (on the same cycle) and the barrier
    re-arms itself for the next generation.  The value delivered to the
    waiters is the generation index that just completed.

    ``parties`` may be lowered at runtime (``set_parties``) — needed when
    a node fails permanently and stops participating in global
    checkpoints.
    """

    __slots__ = ("engine", "name", "parties", "generation", "_flag", "_arrived")

    def __init__(self, engine: "Engine", parties: int, name: str = "barrier"):
        if parties <= 0:
            raise ValueError("barrier needs at least one party")
        self.engine = engine
        self.name = name
        self.parties = parties
        self.generation = 0
        self._flag = EventFlag(engine, name=f"{name}.gen")
        self._arrived = 0

    def arrive(self) -> EventFlag:
        """Register arrival; yield the returned flag to wait for release."""
        flag = self._flag
        self._arrived += 1
        if self._arrived >= self.parties:
            self._release()
        return flag

    def set_parties(self, parties: int) -> None:
        """Adjust the number of participants (e.g. after a node failure)."""
        if parties <= 0:
            raise ValueError("barrier needs at least one party")
        self.parties = parties
        if self._arrived >= self.parties:
            self._release()

    def _release(self) -> None:
        generation = self.generation
        self.generation += 1
        self._arrived = 0
        flag = self._flag
        self._flag = EventFlag(self.engine, name=f"{self.name}.gen")
        flag.fire(generation)

    @property
    def waiting(self) -> int:
        return self._arrived


class MemberBarrier:
    """A barrier over an explicit member set.

    Unlike the counting :class:`Barrier`, arrivals are keyed by member:
    arriving twice in one generation is idempotent, and a member that
    fails mid-phase can be *removed* — its stale arrival is discarded
    and the release condition re-evaluated.  This is what global
    checkpoint/recovery coordination needs when nodes can die between
    two phases of the same episode.
    """

    __slots__ = ("engine", "name", "expected", "generation", "_arrived", "_flag")

    def __init__(self, engine: "Engine", members, name: str = "mbarrier"):
        members = set(members)
        if not members:
            raise ValueError("member barrier needs at least one member")
        self.engine = engine
        self.name = name
        self.expected: set = members
        self.generation = 0
        self._arrived: set = set()
        self._flag = EventFlag(engine, name=f"{name}.gen")

    def arrive(self, member) -> EventFlag:
        """Register ``member``'s arrival; yield the flag to wait."""
        flag = self._flag
        if member in self.expected:
            self._arrived.add(member)
            self._maybe_release()
        return flag

    def remove_member(self, member) -> None:
        """A member failed: stop expecting it (and drop its arrival)."""
        self.expected.discard(member)
        self._arrived.discard(member)
        if not self.expected:
            return
        self._maybe_release()

    def _maybe_release(self) -> None:
        if self.expected and self.expected <= self._arrived:
            generation = self.generation
            self.generation += 1
            self._arrived.clear()
            flag = self._flag
            self._flag = EventFlag(self.engine, name=f"{self.name}.gen")
            flag.fire(generation)

    @property
    def waiting(self) -> int:
        return len(self._arrived)

    @property
    def arrived(self) -> frozenset:
        """Members that arrived in the current generation (diagnostics)."""
        return frozenset(self._arrived)


class Semaphore:
    """Counting semaphore; ``acquire()`` returns a waitable flag."""

    __slots__ = ("engine", "name", "_tokens", "_queue")

    def __init__(self, engine: "Engine", tokens: int = 1, name: str = "sem"):
        if tokens < 0:
            raise ValueError("token count must be non-negative")
        self.engine = engine
        self.name = name
        self._tokens = tokens
        self._queue: list[EventFlag] = []

    def acquire(self) -> EventFlag:
        flag = EventFlag(self.engine, name=f"{self.name}.acq")
        if self._tokens > 0:
            self._tokens -= 1
            flag.fire()
        else:
            self._queue.append(flag)
        return flag

    def release(self) -> None:
        if self._queue:
            self._queue.pop(0).fire()
        else:
            self._tokens += 1

    @property
    def available(self) -> int:
        return self._tokens
