"""Event heap and simulation clock.

Time is measured in integer processor cycles (50 ns at the paper's
20 MHz clock).  The engine is deliberately minimal: a stable priority
queue of ``(time, sequence, callback)`` entries and a run loop.  All
higher-level behaviour (processes, barriers, resources) is layered on
top in the sibling modules.
"""

from __future__ import annotations

import heapq
from typing import Callable


class SimulationError(RuntimeError):
    """Raised on misuse of the simulation kernel (e.g. scheduling in the past)."""


class Engine:
    """A discrete-event simulation engine with integer-cycle time."""

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._heap: list[tuple[int, int, Callable[[], None]]] = []
        self._running = False
        #: Number of events dispatched so far (useful for tests and as a
        #: watchdog against runaway simulations).
        self.events_dispatched: int = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def schedule_at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute ``time``."""
        time = int(time)
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.schedule_at(self._now + int(delay), callback)

    def peek_time(self) -> int | None:
        """Time of the next pending event, or None if the heap is empty."""
        return self._heap[0][0] if self._heap else None

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Dispatch events in time order.

        Runs until the heap is empty, until simulated time would exceed
        ``until``, or until ``max_events`` events have been dispatched.
        Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run call)")
        self._running = True
        dispatched_this_run = 0
        try:
            while self._heap:
                time, _seq, callback = self._heap[0]
                if until is not None and time > until:
                    self._now = until
                    break
                heapq.heappop(self._heap)
                self._now = time
                callback()
                self.events_dispatched += 1
                dispatched_this_run += 1
                if max_events is not None and dispatched_this_run >= max_events:
                    break
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def idle(self) -> bool:
        """True when no events are pending."""
        return not self._heap

    def pending_events(self) -> int:
        return len(self._heap)
