"""Event heap and simulation clock.

Time is measured in integer processor cycles (50 ns at the paper's
20 MHz clock).  The engine is deliberately minimal: a stable priority
queue of ``[time, sequence, callback]`` entries and a run loop.  All
higher-level behaviour (processes, barriers, resources) is layered on
top in the sibling modules.

The run loop dispatches in *same-timestamp batches*: the clock moves
once per distinct timestamp, the ``until`` horizon is checked once per
batch instead of once per event, and zero-delay work scheduled during a
batch lands on an O(1) now-queue instead of churning through the heap.
Entries are mutable lists so an event can be cancelled in place
(:class:`EventHandle`): cancellation tombstones the entry, the heap
drops tombstones lazily as they surface, and a compaction pass rebuilds
the heap when tombstones dominate it.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Callable

#: Lazy-deletion bounds: compaction runs only once more than
#: ``_COMPACT_MIN`` tombstones accumulate *and* tombstones outnumber
#: live heap entries.  Below the floor the rebuild costs more than the
#: dead entries ever will.
_COMPACT_MIN = 64


class SimulationError(RuntimeError):
    """Raised on misuse of the simulation kernel (e.g. scheduling in the past)."""


class EventHandle:
    """A scheduled event that can be cancelled before it fires.

    Returned by :meth:`Engine.schedule_cancellable` /
    :meth:`Engine.schedule_cancellable_at`.  Cancellation is O(1): the
    heap entry is tombstoned in place and skipped (uncounted) when it
    surfaces, so cancelled timers cost neither a heap re-sift now nor a
    no-op dispatch later.
    """

    __slots__ = ("_engine", "_entry")

    def __init__(self, engine: "Engine", entry: list):
        self._engine = engine
        self._entry = entry

    @property
    def time(self) -> int:
        """Absolute fire time the event was scheduled for."""
        return self._entry[0]

    @property
    def active(self) -> bool:
        """True while the event is still pending (not fired, not cancelled)."""
        return self._entry[2] is not None

    def cancel(self) -> bool:
        """Cancel the event; False if it already fired or was cancelled."""
        entry = self._entry
        if entry[2] is None:
            return False
        entry[2] = None
        engine = self._engine
        engine._cancelled += 1
        if (
            engine._cancelled > _COMPACT_MIN
            and engine._cancelled * 2 > len(engine._heap)
        ):
            engine._compact()
        return True


class Engine:
    """A discrete-event simulation engine with integer-cycle time."""

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._heap: list[list] = []  # [time, seq, callback-or-None]
        #: Zero-delay work scheduled *during* dispatch at the current
        #: timestamp; drained after the heap's same-timestamp batch (its
        #: entries always carry later sequence numbers than anything at
        #: this timestamp already in the heap, so FIFO order holds).
        self._nowq: deque[list] = deque()
        self._running = False
        #: Tombstoned (cancelled) entries still sitting in the heap or
        #: now-queue, awaiting lazy deletion.
        self._cancelled: int = 0
        #: Number of events dispatched so far (useful for tests and as a
        #: watchdog against runaway simulations).  Cancelled events are
        #: never dispatched and never counted.
        self.events_dispatched: int = 0

    @property
    def now(self) -> int:
        """Current simulation time in cycles."""
        return self._now

    def _push(self, time: int, callback: Callable[[], None]) -> list:
        """Validate ``time`` once, build the entry, queue it."""
        itime = int(time)
        if itime != time:
            raise SimulationError(
                f"non-integral event time {time!r}: the clock counts whole "
                f"cycles (pass an int, or a float with no fractional part)"
            )
        if itime < self._now:
            raise SimulationError(
                f"cannot schedule at {itime}, current time is {self._now}"
            )
        entry = [itime, self._seq, callback]
        self._seq += 1
        if itime == self._now and self._running:
            # zero-delay fast path: the dispatch loop drains this queue
            # at the current timestamp, no heap traffic at all
            self._nowq.append(entry)
        else:
            heapq.heappush(self._heap, entry)
        return entry

    def schedule_at(self, time: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute ``time``."""
        self._push(time, callback)

    def schedule(self, delay: int, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` cycles from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._push(self._now + delay, callback)

    def schedule_cancellable_at(
        self, time: int, callback: Callable[[], None]
    ) -> EventHandle:
        """Like :meth:`schedule_at`, returning a cancellable handle."""
        return EventHandle(self, self._push(time, callback))

    def schedule_cancellable(
        self, delay: int, callback: Callable[[], None]
    ) -> EventHandle:
        """Like :meth:`schedule`, returning a cancellable handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return EventHandle(self, self._push(self._now + delay, callback))

    def _compact(self) -> None:
        """Rebuild the heap without tombstones (lazy-deletion backstop).

        In place: ``run()`` aliases the heap list locally, so the list
        object must keep its identity across a mid-run compaction.
        """
        heap = self._heap
        before = len(heap)
        heap[:] = [entry for entry in heap if entry[2] is not None]
        heapq.heapify(heap)
        self._cancelled -= before - len(heap)

    def peek_time(self) -> int | None:
        """Time of the next pending event, or None if none are pending."""
        if self._nowq:  # only during dispatch; entries are at ``now``
            return self._nowq[0][0]
        heap = self._heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def run(self, until: int | None = None, max_events: int | None = None) -> int:
        """Dispatch events in time order.

        Runs until no events are pending, until simulated time would
        exceed ``until``, or until ``max_events`` events have been
        dispatched.  Returns the final simulation time.

        Events sharing a timestamp dispatch as one batch in schedule
        (FIFO) order — including zero-delay events scheduled by the
        batch itself — with the horizon checks per batch, not per event.
        """
        if self._running:
            raise SimulationError("engine is already running (re-entrant run call)")
        self._running = True
        heap = self._heap
        nowq = self._nowq
        pop = heapq.heappop
        dispatched = 0
        stop = False
        try:
            while not stop:
                while heap and heap[0][2] is None:  # shed tombstones
                    pop(heap)
                    self._cancelled -= 1
                if not heap:
                    if until is not None and until > self._now:
                        self._now = until
                    break
                t = heap[0][0]
                if until is not None and t > until:
                    self._now = until
                    break
                self._now = t
                # Dispatch the whole batch at t: heap entries first (they
                # pre-date everything the batch schedules, so their
                # sequence numbers are lower), then the now-queue.
                if max_events is None:
                    while True:
                        if heap and heap[0][0] == t:
                            entry = pop(heap)
                        elif nowq:
                            entry = nowq.popleft()
                        else:
                            break
                        callback = entry[2]
                        if callback is None:
                            self._cancelled -= 1
                            continue
                        entry[2] = None
                        callback()
                        dispatched += 1
                else:
                    while True:
                        if heap and heap[0][0] == t:
                            entry = pop(heap)
                        elif nowq:
                            entry = nowq.popleft()
                        else:
                            break
                        callback = entry[2]
                        if callback is None:
                            self._cancelled -= 1
                            continue
                        entry[2] = None
                        callback()
                        dispatched += 1
                        if dispatched >= max_events:
                            stop = True
                            break
        finally:
            self.events_dispatched += dispatched
            while nowq:  # stopped mid-batch: undrained zero-delay work
                heapq.heappush(heap, nowq.popleft())  # (seq keeps FIFO order)
            self._running = False
        return self._now

    def idle(self) -> bool:
        """True when no events are pending."""
        return self.pending_events() == 0

    def pending_events(self) -> int:
        return len(self._heap) + len(self._nowq) - self._cancelled
