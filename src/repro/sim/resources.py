"""Contention modelling.

Two flavours are provided:

:class:`Resource`
    A classic blocking queueing resource (capacity ``servers``); used by
    full process-level models and by the kernel's own tests.

:class:`ContentionPoint`
    The fast "next-free-time" bookkeeping used by analytic-latency
    transactions (DESIGN.md section 3).  A transaction that needs the
    point at time ``t`` for ``service`` cycles calls
    :meth:`ContentionPoint.occupy`; the returned value is the time the
    service *completes*, after queueing behind earlier users.  This is a
    single-server FIFO approximation that preserves the shape of
    contention effects without simulating every cycle.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Engine

from repro.sim.sync import EventFlag, Semaphore


class Resource:
    """Blocking multi-server resource for process-level models."""

    __slots__ = ("engine", "name", "_sem", "total_acquisitions")

    def __init__(self, engine: "Engine", servers: int = 1, name: str = "res"):
        self.engine = engine
        self.name = name
        self._sem = Semaphore(engine, tokens=servers, name=name)
        self.total_acquisitions = 0

    def acquire(self) -> EventFlag:
        self.total_acquisitions += 1
        return self._sem.acquire()

    def release(self) -> None:
        self._sem.release()

    @property
    def available(self) -> int:
        return self._sem.available


class ContentionPoint:
    """FIFO contention bookkeeping (analytic transactions).

    ``servers`` models replicated units (e.g. the KSR1's four
    independent AM controllers): an occupation takes the
    earliest-free server.  This also absorbs the timeline artifact of
    analytic models where a reservation made at a future timestamp
    would otherwise delay an earlier request.
    """

    __slots__ = ("name", "_free", "busy_cycles", "uses", "waited_cycles")

    def __init__(self, name: str = "cp", servers: int = 1):
        if servers < 1:
            raise ValueError("need at least one server")
        self.name = name
        self._free = [0] * servers
        #: Total cycles the point has been busy (utilisation numerator).
        self.busy_cycles: int = 0
        self.uses: int = 0
        #: Total cycles callers spent queueing behind earlier users.
        self.waited_cycles: int = 0

    @property
    def next_free(self) -> int:
        """Earliest time any server is free."""
        return min(self._free)

    def occupy(self, at: int, service: int) -> int:
        """Occupy the earliest-free server from ``at`` for ``service``
        cycles; returns the completion time."""
        free = self._free
        if len(free) == 1:
            idx = 0
        else:
            idx = min(range(len(free)), key=free.__getitem__)
        start = at if at > free[idx] else free[idx]
        self.waited_cycles += start - at
        end = start + service
        free[idx] = end
        self.busy_cycles += service
        self.uses += 1
        return end

    def wait_until_free(self, at: int) -> int:
        """Earliest time a server is free at or after ``at``."""
        nf = self.next_free
        return at if at > nf else nf

    def reset(self) -> None:
        self._free = [0] * len(self._free)
        self.busy_cycles = 0
        self.uses = 0
        self.waited_cycles = 0

    def utilisation(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` cycles the point was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ContentionPoint {self.name} next_free={self.next_free}>"
