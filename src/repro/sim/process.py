"""Generator-based lightweight processes.

A :class:`Process` wraps a Python generator.  The generator *yields*
what it wants to wait on:

- an ``int``/``float`` — sleep for that many cycles;
- an :class:`~repro.sim.sync.EventFlag` — resume when the flag fires
  (the fired value is sent back into the generator);
- an object exposing ``_subscribe(process)`` — any custom waitable.

When the generator returns, the process completes and its ``done`` flag
is raised; other processes may wait on :attr:`completion`.
"""

from __future__ import annotations

import enum
from typing import Generator, Any, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Engine

from repro.sim.engine import SimulationError


class ProcessState(enum.Enum):
    READY = "ready"
    WAITING = "waiting"
    DONE = "done"
    FAILED = "failed"


class Process:
    """A lightweight simulated process driven by the engine."""

    __slots__ = ("engine", "name", "_body", "state", "result", "error", "completion")

    def __init__(self, engine: "Engine", body: Generator[Any, Any, Any], name: str = "proc"):
        from repro.sim.sync import EventFlag  # local import to avoid a cycle

        self.engine = engine
        self.name = name
        self._body = body
        self.state = ProcessState.READY
        self.result: Any = None
        self.error: BaseException | None = None
        #: Fires (with the generator's return value) when the process ends.
        self.completion = EventFlag(engine, name=f"{name}.done")
        engine.schedule(0, lambda: self._step(None))

    # -- internals ----------------------------------------------------

    def _step(self, value: Any) -> None:
        if self.state in (ProcessState.DONE, ProcessState.FAILED):
            return
        self.state = ProcessState.READY
        try:
            wanted = self._body.send(value)
        except StopIteration as stop:
            self.state = ProcessState.DONE
            self.result = stop.value
            self.completion.fire(stop.value)
            return
        except BaseException as exc:  # propagate to the driver via .error
            self.state = ProcessState.FAILED
            self.error = exc
            self.completion.fire(None)
            raise
        self.state = ProcessState.WAITING
        if isinstance(wanted, (int, float)):
            if wanted < 0:
                raise SimulationError(f"process {self.name} yielded negative delay {wanted}")
            self.engine.schedule(int(wanted), lambda: self._step(None))
        elif hasattr(wanted, "_subscribe"):
            wanted._subscribe(self)
        else:
            raise SimulationError(
                f"process {self.name} yielded unsupported value {wanted!r}"
            )

    def _resume(self, value: Any) -> None:
        """Called by waitables when the awaited condition is satisfied."""
        self.engine.schedule(0, lambda: self._step(value))

    # -- introspection ------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state is ProcessState.DONE

    @property
    def failed(self) -> bool:
        return self.state is ProcessState.FAILED

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Process {self.name} {self.state.value}>"
