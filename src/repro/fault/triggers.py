"""Phase-targeted fault injection.

The timed :func:`~repro.fault.injector.fault_injector` can only hit a
protocol window by luck; the scenarios the paper's Section 3.3/3.4
arguments actually hinge on — "a node fails *while the commits are in
flight*", "the recovery leader dies *during reconfiguration*" — need
failures aimed at a window, not at a time.

A :class:`PhaseTrigger` names a window from
:data:`repro.machine.TRIGGER_WINDOWS`, a target (a concrete node, the
episode leader, or a random live node) and an optional delay.  The
:class:`TriggerInjector` registers as a coordinator window listener;
when the machine enters the trigger's window for the configured
occurrence, it schedules the failure.  Targets are resolved and
liveness is re-checked *at fire time* — the leader may have changed, or
the target may already be dead — in which case the trigger becomes a
recorded no-op exactly like a stale plan entry
(``stats.n_failures_skipped``).

The injector also counts every window entry, giving campaigns their
phase-coverage table for free.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Union

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine

#: Target sentinel: the leader of the episode that opened the window
#: (``ckpt_leader`` for checkpoint windows, ``rec_leader`` for recovery
#: windows), resolved at fire time.
LEADER = "leader"
#: Target sentinel: a uniformly drawn live node, resolved at fire time.
RANDOM = "random"
#: Target sentinel: the node whose join catch-up opened the window
#: (``machine._joining``), resolved at fire time — the way to kill a
#: join mid-catch-up.  Skipped when no join is in flight.
JOINER = "joiner"


@dataclass(frozen=True)
class PhaseTrigger:
    """One failure aimed at a named protocol window."""

    #: A window from :data:`repro.machine.TRIGGER_WINDOWS`.
    window: str
    #: A node id, or the :data:`LEADER` / :data:`RANDOM` sentinel.
    target: Union[int, str] = RANDOM
    permanent: bool = False
    #: Transient failures only: cycles until the hardware returns.
    repair_delay: int = 0
    #: Cycles between window entry and the failure.  Zero fires on the
    #: entry cycle itself (after the entering transition completes).
    delay: int = 0
    #: Fire on the Nth entry of the window (1-based); earlier entries
    #: only count.
    occurrence: int = 1

    def __post_init__(self) -> None:
        from repro.machine import TRIGGER_WINDOWS

        if self.window not in TRIGGER_WINDOWS:
            raise ValueError(
                f"unknown trigger window {self.window!r}; pick one of "
                f"{', '.join(TRIGGER_WINDOWS)}"
            )
        if isinstance(self.target, str) and self.target not in (
            LEADER, RANDOM, JOINER,
        ):
            raise ValueError(
                f"trigger target must be a node id, {LEADER!r}, {RANDOM!r} "
                f"or {JOINER!r}, not {self.target!r}"
            )
        if self.delay < 0:
            raise ValueError("trigger delay must be non-negative")
        if self.occurrence < 1:
            raise ValueError("trigger occurrence is 1-based")
        if self.repair_delay < 0:
            raise ValueError("repair delay must be non-negative")
        if self.permanent and self.repair_delay:
            raise ValueError("a permanent failure has no repair delay")

    def describe(self) -> str:
        kind = "permanent" if self.permanent else "transient"
        return (
            f"{kind} failure of {self.target} at {self.window}"
            f"[{self.occurrence}]+{self.delay}"
        )


class TriggerInjector:
    """Coordinator window listener that fires :class:`PhaseTrigger`\\ s.

    Attach with :func:`attach_trigger_injector` (or call
    :meth:`attach`) *before* ``machine.run()``.
    """

    def __init__(
        self,
        machine: "Machine",
        triggers: list[PhaseTrigger],
        rng: random.Random | None = None,
    ):
        self.machine = machine
        self.triggers = list(triggers)
        self.rng = rng or random.Random(machine.cfg.seed)
        #: window -> number of times the machine entered it.
        self.windows_entered: Counter = Counter()
        #: Triggers whose failure was actually injected.
        self.fired: list[PhaseTrigger] = []
        #: Triggers that resolved to a dead/absent target at fire time.
        self.skipped: list[PhaseTrigger] = []
        self._pending = list(self.triggers)

    def attach(self) -> "TriggerInjector":
        self.machine.coordinator.window_listeners.append(self._on_window)
        return self

    # -- listener -------------------------------------------------------

    def _on_window(self, window: str) -> None:
        self.windows_entered[window] += 1
        count = self.windows_entered[window]
        due = [
            t for t in self._pending
            if t.window == window and t.occurrence == count
        ]
        for trigger in due:
            self._pending.remove(trigger)
            # always go through the event heap: the listener runs inside
            # the transition that opened the window, and failing a node
            # synchronously there would mutate coordination state under
            # the very generator performing the transition
            self.machine.engine.schedule(
                trigger.delay, lambda t=trigger: self._fire(t)
            )

    def _resolve_target(self, trigger: PhaseTrigger) -> int | None:
        coord = self.machine.coordinator
        if trigger.target == LEADER:
            # leader_handoff transfers *checkpoint* leadership, so its
            # LEADER is the checkpoint leader like the ckpt_* windows
            leader = (
                coord.ckpt_leader
                if trigger.window.startswith("ckpt")
                or trigger.window == "leader_handoff"
                else coord.rec_leader
            )
            return leader if leader >= 0 else None
        if trigger.target == JOINER:
            return self.machine._joining
        if trigger.target == RANDOM:
            live = [n.node_id for n in self.machine.nodes if n.alive]
            return self.rng.choice(live) if live else None
        return int(trigger.target)

    def _fire(self, trigger: PhaseTrigger) -> None:
        machine = self.machine
        node_id = self._resolve_target(trigger)
        if (
            node_id is None
            or not 0 <= node_id < len(machine.nodes)
            or not machine.nodes[node_id].alive
        ):
            machine.stats.n_failures_skipped += 1
            self.skipped.append(trigger)
            return
        self.fired.append(trigger)
        machine.fail_node(
            node_id,
            permanent=trigger.permanent,
            repair_delay=trigger.repair_delay,
        )


def attach_trigger_injector(
    machine: "Machine",
    triggers: list[PhaseTrigger],
    rng: random.Random | None = None,
) -> TriggerInjector:
    """Build a :class:`TriggerInjector` and register it on ``machine``."""
    return TriggerInjector(machine, triggers, rng=rng).attach()
