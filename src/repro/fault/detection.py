"""Heartbeat-based failure detection.

The paper assumes fail-silent nodes and leaves detection out of scope;
the machine's default model is a fixed detection latency (plus the
request-timeout path).  This module provides the obvious concrete
mechanism instead: a monitor process that polls node liveness every
``period`` cycles — the effective detection latency becomes at most one
heartbeat period, emerging from the mechanism rather than configured.

Attach before ``run()``::

    machine = Machine(cfg, wl, protocol="ecp", failure_plan=plan)
    attach_heartbeat_monitor(machine, period=2_000)
    machine.run()
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine


def heartbeat_monitor(
    machine: "Machine", period: int = 2_000
) -> Generator[int, None, None]:
    """Simulation process: detect dead nodes within one period."""
    if period <= 0:
        raise ValueError("heartbeat period must be positive")
    known_alive = {n.node_id for n in machine.nodes}
    while True:
        yield period
        if not machine.coordinator.active and machine.engine.idle():
            return
        for node in machine.nodes:
            if node.alive:
                known_alive.add(node.node_id)
            elif node.node_id in known_alive:
                known_alive.discard(node.node_id)
                machine.detect_failure(node.node_id)
        if not machine.coordinator.active:
            return


def attach_heartbeat_monitor(machine: "Machine", period: int = 2_000) -> None:
    """Register the monitor to start with the machine's processes."""
    machine.extra_processes.append(
        ("heartbeat", heartbeat_monitor(machine, period))
    )
