"""Failure models, fault injection and campaign machinery.

Import discipline: :mod:`repro.machine` imports this package's
``failures``/``injector``/``watchdog`` modules, so this ``__init__``
must never import the campaign side (``triggers`` touches
``repro.machine`` lazily; ``outcomes``/``campaign`` import it at module
level) — import those modules by their full names instead.
"""

from repro.fault.failures import FailurePlan, validate_failure_plan
from repro.fault.injector import fault_injector
from repro.fault.watchdog import DEFAULT_STALL_BUDGET, StallError, stall_watchdog

__all__ = [
    "FailurePlan",
    "validate_failure_plan",
    "fault_injector",
    "DEFAULT_STALL_BUDGET",
    "StallError",
    "stall_watchdog",
]
