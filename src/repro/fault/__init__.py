"""Failure models and the fault-injection process."""

from repro.fault.failures import FailurePlan
from repro.fault.injector import fault_injector

__all__ = ["FailurePlan", "fault_injector"]
