"""Outcome classification for fault-injected runs.

Every campaign run terminates in *exactly one* of six classes:

``COMPLETED``
    all work finished; no recovery was ever needed.
``RECOVERED``
    all work finished after one or more recoveries, and every
    transiently failed node rejoined (the machine healed completely).
``DEGRADED``
    all work finished, but at least one node is permanently gone — the
    machine runs on, reconfigured (the paper's graceful degradation).
``UNRECOVERABLE_EXPECTED``
    the run died of a failure pattern the paper's fault model
    *declares* fatal — overlapping failures during a recovery, or too
    few live memories to host the copies of a modified item.  Signalled
    by :class:`~repro.checkpoint.recovery.UnrecoverableFailure` with
    ``fault_model_fatal`` set (see :func:`repro.machine._fault_model_fatal`).
``STALLED``
    the stall watchdog found no progress for its cycle budget with work
    outstanding; the :class:`~repro.fault.watchdog.StallError`
    diagnostic dump is preserved in the outcome.
``SIMULATOR_BUG``
    anything else: an in-model run that raised (including invariant
    violations and unrecoverable states the protocol should never
    produce), or that terminated "cleanly" with work left undone.

The distinction that makes campaigns useful as a test oracle is the
last three-way split: STALLED and SIMULATOR_BUG are always defects to
fix, UNRECOVERABLE_EXPECTED never is.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.checkpoint.recovery import UnrecoverableFailure
from repro.fault.watchdog import StallError

if TYPE_CHECKING:  # pragma: no cover
    from repro.fault.triggers import TriggerInjector
    from repro.machine import Machine


class Outcome(str, enum.Enum):
    """Terminal classification of one fault-injected run."""

    COMPLETED = "completed"
    RECOVERED = "recovered"
    DEGRADED = "degraded"
    UNRECOVERABLE_EXPECTED = "unrecoverable_expected"
    STALLED = "stalled"
    SIMULATOR_BUG = "simulator_bug"


#: Outcomes that indicate a defect in the simulator/protocol rather
#: than an (expected) consequence of the injected faults.
DEFECT_OUTCOMES = frozenset({Outcome.STALLED, Outcome.SIMULATOR_BUG})


@dataclass
class RunOutcome:
    """One run's classification plus the campaign metrics."""

    outcome: Outcome
    #: One line of context (exception message, completion summary).
    detail: str = ""

    # progress / cost metrics
    total_cycles: int = 0
    refs: int = 0
    n_checkpoints: int = 0
    n_recoveries: int = 0
    n_failures: int = 0
    n_failures_skipped: int = 0
    #: References undone by rollbacks (work lost to failures).
    rollback_refs: int = 0
    #: Total cycles spent inside recoveries; divided by
    #: ``n_recoveries`` this is the mean recovery latency.
    recovery_cycles: int = 0
    permanently_dead: int = 0

    # checkpoint-pollution metrics (ECP overhead the workload induces)
    #: Bytes of checkpoint state replicated across nodes.
    ckpt_bytes_replicated: int = 0
    #: Items newly replicated at checkpoints.
    ckpt_items_replicated: int = 0
    #: Items whose existing shared replica was reused instead.
    ckpt_items_reused: int = 0

    # reliable-transport metrics (zero on a reliable interconnect)
    transport_retries: int = 0
    transport_timeouts: int = 0
    transport_retransmitted_flits: int = 0
    transport_duplicates_suppressed: int = 0
    transport_suspicions: int = 0
    spurious_suspicions: int = 0

    # elastic-membership metrics (zero on static-membership runs)
    n_joins: int = 0
    joins_aborted: int = 0
    join_latency_cycles: int = 0
    catchup_bytes: int = 0
    refs_during_reconfig: int = 0
    n_handoffs: int = 0

    # phase-targeting coverage (from the TriggerInjector, if any)
    windows_entered: dict[str, int] = field(default_factory=dict)
    triggers_fired: int = 0
    triggers_skipped: int = 0

    #: Stall/crash diagnostics (watchdog dump or traceback tail).
    diagnostic: str | None = None

    @property
    def is_defect(self) -> bool:
        return self.outcome in DEFECT_OUTCOMES

    def mean_recovery_latency(self) -> float:
        if self.n_recoveries == 0:
            return 0.0
        return self.recovery_cycles / self.n_recoveries

    def mean_rollback_distance(self) -> float:
        """References lost per recovery (the rollback distance)."""
        if self.n_recoveries == 0:
            return 0.0
        return self.rollback_refs / self.n_recoveries

    def to_dict(self) -> dict:
        return {
            "outcome": self.outcome.value,
            "detail": self.detail,
            "total_cycles": self.total_cycles,
            "refs": self.refs,
            "n_checkpoints": self.n_checkpoints,
            "n_recoveries": self.n_recoveries,
            "n_failures": self.n_failures,
            "n_failures_skipped": self.n_failures_skipped,
            "rollback_refs": self.rollback_refs,
            "recovery_cycles": self.recovery_cycles,
            "permanently_dead": self.permanently_dead,
            "ckpt_bytes_replicated": self.ckpt_bytes_replicated,
            "ckpt_items_replicated": self.ckpt_items_replicated,
            "ckpt_items_reused": self.ckpt_items_reused,
            "transport_retries": self.transport_retries,
            "transport_timeouts": self.transport_timeouts,
            "transport_retransmitted_flits": self.transport_retransmitted_flits,
            "transport_duplicates_suppressed": self.transport_duplicates_suppressed,
            "transport_suspicions": self.transport_suspicions,
            "spurious_suspicions": self.spurious_suspicions,
            "n_joins": self.n_joins,
            "joins_aborted": self.joins_aborted,
            "join_latency_cycles": self.join_latency_cycles,
            "catchup_bytes": self.catchup_bytes,
            "refs_during_reconfig": self.refs_during_reconfig,
            "n_handoffs": self.n_handoffs,
            "windows_entered": dict(self.windows_entered),
            "triggers_fired": self.triggers_fired,
            "triggers_skipped": self.triggers_skipped,
            "diagnostic": self.diagnostic,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunOutcome":
        data = dict(data)
        data["outcome"] = Outcome(data["outcome"])
        return cls(**data)


def _collect_metrics(
    machine: "Machine", outcome: RunOutcome, injector: "TriggerInjector | None"
) -> RunOutcome:
    stats = machine.stats
    outcome.total_cycles = max(stats.total_cycles, machine.engine.now)
    outcome.refs = stats.refs
    outcome.n_checkpoints = stats.n_checkpoints
    outcome.n_recoveries = stats.n_recoveries
    outcome.n_failures = stats.n_failures
    outcome.n_failures_skipped = stats.n_failures_skipped
    outcome.rollback_refs = stats.rollback_refs
    outcome.recovery_cycles = stats.recovery_cycles
    outcome.permanently_dead = len(machine._permanently_dead)
    outcome.ckpt_bytes_replicated = stats.total("ckpt_bytes_replicated")
    outcome.ckpt_items_replicated = stats.total("ckpt_items_replicated")
    outcome.ckpt_items_reused = stats.total("ckpt_items_reused")
    outcome.transport_retries = stats.transport_retries
    outcome.transport_timeouts = stats.transport_timeouts
    outcome.transport_retransmitted_flits = stats.transport_retransmitted_flits
    outcome.transport_duplicates_suppressed = stats.transport_duplicates_suppressed
    outcome.transport_suspicions = stats.transport_suspicions
    outcome.spurious_suspicions = stats.spurious_suspicions
    outcome.n_joins = stats.n_joins
    outcome.joins_aborted = stats.joins_aborted
    outcome.join_latency_cycles = stats.join_latency_cycles
    outcome.catchup_bytes = stats.catchup_bytes
    outcome.refs_during_reconfig = stats.refs_during_reconfig
    outcome.n_handoffs = stats.n_handoffs
    if injector is not None:
        outcome.windows_entered = dict(injector.windows_entered)
        outcome.triggers_fired = len(injector.fired)
        outcome.triggers_skipped = len(injector.skipped)
    return outcome


def classify_completion(machine: "Machine") -> RunOutcome:
    """Classify a run whose ``machine.run()`` returned normally."""
    unfinished = [s.proc_id for s in machine.all_streams() if not s.exhausted]
    if unfinished:
        # the engine went quiet with work left: an event-starved
        # deadlock that even the watchdog could not convert (or the
        # watchdog was off) — never a legal end state
        return RunOutcome(
            Outcome.SIMULATOR_BUG,
            detail=(
                f"run ended with {len(unfinished)} unexhausted stream(s) "
                f"(procs {unfinished[:8]})"
            ),
        )
    if machine._permanently_dead:
        return RunOutcome(
            Outcome.DEGRADED,
            detail=(
                f"completed on {sum(1 for n in machine.nodes if n.alive)} "
                f"nodes after losing {sorted(machine._permanently_dead)}"
            ),
        )
    if machine.stats.n_recoveries:
        return RunOutcome(
            Outcome.RECOVERED,
            detail=f"completed after {machine.stats.n_recoveries} recover"
            f"{'y' if machine.stats.n_recoveries == 1 else 'ies'}",
        )
    return RunOutcome(Outcome.COMPLETED, detail="completed failure-free")


def classify_error(error: BaseException) -> RunOutcome:
    """Classify a run whose ``machine.run()`` raised ``error``."""
    if isinstance(error, StallError):
        return RunOutcome(
            Outcome.STALLED, detail=str(error).splitlines()[0],
            diagnostic=error.diagnostic,
        )
    if isinstance(error, UnrecoverableFailure) and error.fault_model_fatal:
        return RunOutcome(Outcome.UNRECOVERABLE_EXPECTED, detail=str(error))
    # plain UnrecoverableFailure, AssertionError (invariant violations
    # subclass it), or any other exception: the protocol broke
    detail = f"{type(error).__name__}: {error}"
    first_line = detail.splitlines()[0]
    return RunOutcome(
        Outcome.SIMULATOR_BUG,
        detail=first_line,
        diagnostic=detail if detail != first_line else None,
    )


def run_and_classify(
    machine: "Machine",
    injector: "TriggerInjector | None" = None,
    max_cycles: int | None = None,
) -> RunOutcome:
    """Run ``machine`` to termination and classify the result.

    Never raises for simulation-side errors (that is the point); only
    programming errors in this harness itself escape.
    """
    try:
        machine.run(max_cycles=max_cycles)
    except BaseException as error:  # noqa: BLE001 — classification is the contract
        outcome = classify_error(error)
    else:
        outcome = classify_completion(machine)
        if not outcome.is_defect:
            # a "successful" run that left the global protocol state
            # corrupted is still a bug — audit the end state
            try:
                machine.check_invariants()
            except AssertionError as error:
                outcome = classify_error(error)
    return _collect_metrics(machine, outcome, injector)
