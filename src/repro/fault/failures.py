"""Failure descriptions.

The fault model is the paper's: fail-silent nodes (a failed node simply
stops — no erroneous messages), a fault-free interconnection network,
multiple transient failures and at most one permanent failure between
two completed recoveries.  A *transient* failure loses the node's
volatile state (cache and AM contents) but the hardware returns after
``repair_delay`` cycles; a *permanent* failure removes the node for the
rest of the run.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FailurePlan:
    """One scheduled node failure."""

    time: int
    node: int
    permanent: bool = False
    #: Transient failures only: cycles until the node hardware is back
    #: and may rejoin (its memory content is still lost).
    repair_delay: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be non-negative")
        if self.repair_delay < 0:
            raise ValueError("repair delay must be non-negative")
        if self.permanent and self.repair_delay:
            raise ValueError("a permanent failure has no repair delay")


def validate_failure_plan(plan: list[FailurePlan], n_nodes: int) -> None:
    """Reject plans that cannot be executed or violate the fault model.

    Checked statically, at :class:`~repro.machine.Machine` construction,
    so a bad plan fails with a clear message instead of blowing up
    thousands of cycles into a run:

    - every target node must exist;
    - a node must not be scheduled to fail again before its previous
      transient failure's repair completes (the hardware is not back
      yet), nor ever again after a permanent failure;
    - at most one permanent failure per plan: the paper's fault model
      allows one permanent failure *between two completed recoveries*,
      and a static plan has no way to order a completed recovery
      between two permanent failures.
    """
    permanents = [f for f in plan if f.permanent]
    if len(permanents) > 1:
        times = ", ".join(f"t={f.time}" for f in sorted(permanents, key=lambda f: f.time))
        raise ValueError(
            f"failure plan schedules {len(permanents)} permanent failures "
            f"({times}); the fault model allows at most one permanent "
            "failure between two completed recoveries, and a static plan "
            "cannot guarantee a recovery completes between them"
        )
    by_node: dict[int, list[FailurePlan]] = {}
    for failure in plan:
        if not 0 <= failure.node < n_nodes:
            raise ValueError(
                f"failure plan targets node {failure.node}, but the "
                f"machine has nodes 0..{n_nodes - 1}"
            )
        by_node.setdefault(failure.node, []).append(failure)
    for node, failures in by_node.items():
        failures.sort(key=lambda f: (f.time, f.permanent))
        for prev, nxt in zip(failures, failures[1:]):
            if prev.permanent:
                raise ValueError(
                    f"node {node} is scheduled to fail at t={nxt.time} "
                    f"after its permanent failure at t={prev.time}; a "
                    "permanently failed node never returns"
                )
            repaired_at = prev.time + prev.repair_delay
            if nxt.time <= repaired_at:
                raise ValueError(
                    f"node {node} is scheduled to fail again at "
                    f"t={nxt.time}, before the repair of its t={prev.time} "
                    f"failure completes (ready at t={repaired_at}); "
                    "stagger the plan or extend the repair delay"
                )
