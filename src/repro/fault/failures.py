"""Failure descriptions.

The fault model is the paper's: fail-silent nodes (a failed node simply
stops — no erroneous messages), a fault-free interconnection network,
multiple transient failures and at most one permanent failure between
two completed recoveries.  A *transient* failure loses the node's
volatile state (cache and AM contents) but the hardware returns after
``repair_delay`` cycles; a *permanent* failure removes the node for the
rest of the run.

Elastic membership adds a third plan dimension: a
:class:`MembershipEvent` either *joins* an installed-but-unjoined node
slot mid-run or requests a deliberate coordination-leadership
*handoff*.  Failure-plan validation is membership-aware — a plan may
target a node that joins earlier in the run, and never one that has
not joined yet.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FailurePlan:
    """One scheduled node failure."""

    time: int
    node: int
    permanent: bool = False
    #: Transient failures only: cycles until the node hardware is back
    #: and may rejoin (its memory content is still lost).
    repair_delay: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be non-negative")
        if self.repair_delay < 0:
            raise ValueError("repair delay must be non-negative")
        if self.permanent and self.repair_delay:
            raise ValueError("a permanent failure has no repair delay")


@dataclass(frozen=True)
class MembershipEvent:
    """One scheduled membership change.

    ``kind="join"`` admits node slot ``node`` (built unjoined via
    ``Machine(initial_members=...)``) at ``time``; ``kind="handoff"``
    requests a deliberate checkpoint-leadership transfer to participant
    ``node`` (or to the smallest other participant when ``node`` is
    negative).
    """

    time: int
    kind: str = "join"
    node: int = -1

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("membership event time must be non-negative")
        if self.kind not in ("join", "handoff"):
            raise ValueError(
                f"unknown membership event kind {self.kind!r}; "
                "pick 'join' or 'handoff'"
            )
        if self.kind == "join" and self.node < 0:
            raise ValueError("a join event must name the slot to admit")


def validate_membership_plan(
    plan: list[MembershipEvent], n_nodes: int, initial_members: int
) -> None:
    """Reject membership plans that cannot be executed.

    - a join must target an installed-but-unjoined slot
      (``initial_members <= node < n_nodes``);
    - each slot joins at most once;
    - a handoff target, when explicit, must be an existing node.
    """
    joined: set[int] = set()
    for event in sorted(plan, key=lambda e: e.time):
        if event.kind == "join":
            if not initial_members <= event.node < n_nodes:
                raise ValueError(
                    f"membership plan joins node {event.node}, but only "
                    f"slots {initial_members}..{n_nodes - 1} are installed "
                    "and unjoined"
                )
            if event.node in joined:
                raise ValueError(
                    f"membership plan joins node {event.node} twice; a "
                    "slot joins at most once"
                )
            joined.add(event.node)
        elif event.node >= n_nodes:
            raise ValueError(
                f"membership plan hands leadership to node {event.node}, "
                f"but the machine has nodes 0..{n_nodes - 1}"
            )


def validate_failure_plan(
    plan: list[FailurePlan],
    n_nodes: int,
    *,
    initial_members: int | None = None,
    membership_plan: list[MembershipEvent] | None = None,
) -> None:
    """Reject plans that cannot be executed or violate the fault model.

    Checked statically, at :class:`~repro.machine.Machine` construction,
    so a bad plan fails with a clear message instead of blowing up
    thousands of cycles into a run:

    - every target node must exist;
    - a node must not be scheduled to fail again before its previous
      transient failure's repair completes (the hardware is not back
      yet), nor ever again after a permanent failure;
    - at most one permanent failure per plan: the paper's fault model
      allows one permanent failure *between two completed recoveries*,
      and a static plan has no way to order a completed recovery
      between two permanent failures.

    Targets resolve against *dynamic* membership: with
    ``initial_members``/``membership_plan`` given, a failure may target
    a joined slot from its join time onward, and never before.
    """
    joins_at: dict[int, int] = {}
    if membership_plan:
        joins_at = {
            e.node: e.time for e in membership_plan if e.kind == "join"
        }
    permanents = [f for f in plan if f.permanent]
    if len(permanents) > 1:
        times = ", ".join(f"t={f.time}" for f in sorted(permanents, key=lambda f: f.time))
        raise ValueError(
            f"failure plan schedules {len(permanents)} permanent failures "
            f"({times}); the fault model allows at most one permanent "
            "failure between two completed recoveries, and a static plan "
            "cannot guarantee a recovery completes between them"
        )
    by_node: dict[int, list[FailurePlan]] = {}
    for failure in plan:
        if not 0 <= failure.node < n_nodes:
            raise ValueError(
                f"failure plan targets node {failure.node}, but the "
                f"machine has nodes 0..{n_nodes - 1}"
            )
        if initial_members is not None and failure.node >= initial_members:
            join_time = joins_at.get(failure.node)
            if join_time is None:
                raise ValueError(
                    f"failure plan targets node {failure.node}, but only "
                    f"nodes 0..{initial_members - 1} are members and no "
                    "membership event ever joins it"
                )
            if failure.time < join_time:
                raise ValueError(
                    f"failure plan targets node {failure.node} at "
                    f"t={failure.time}, before its join at t={join_time}; "
                    "an unjoined slot cannot fail"
                )
        by_node.setdefault(failure.node, []).append(failure)
    for node, failures in by_node.items():
        failures.sort(key=lambda f: (f.time, f.permanent))
        for prev, nxt in zip(failures, failures[1:]):
            if prev.permanent:
                raise ValueError(
                    f"node {node} is scheduled to fail at t={nxt.time} "
                    f"after its permanent failure at t={prev.time}; a "
                    "permanently failed node never returns"
                )
            repaired_at = prev.time + prev.repair_delay
            if nxt.time <= repaired_at:
                raise ValueError(
                    f"node {node} is scheduled to fail again at "
                    f"t={nxt.time}, before the repair of its t={prev.time} "
                    f"failure completes (ready at t={repaired_at}); "
                    "stagger the plan or extend the repair delay"
                )
