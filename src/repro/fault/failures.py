"""Failure descriptions.

The fault model is the paper's: fail-silent nodes (a failed node simply
stops — no erroneous messages), a fault-free interconnection network,
multiple transient failures and at most one permanent failure between
two completed recoveries.  A *transient* failure loses the node's
volatile state (cache and AM contents) but the hardware returns after
``repair_delay`` cycles; a *permanent* failure removes the node for the
rest of the run.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FailurePlan:
    """One scheduled node failure."""

    time: int
    node: int
    permanent: bool = False
    #: Transient failures only: cycles until the node hardware is back
    #: and may rejoin (its memory content is still lost).
    repair_delay: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError("failure time must be non-negative")
        if self.repair_delay < 0:
            raise ValueError("repair delay must be non-negative")
        if self.permanent and self.repair_delay:
            raise ValueError("a permanent failure has no repair delay")
