"""The fault-injection simulation process."""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.fault.failures import FailurePlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine


def fault_injector(
    machine: "Machine", plan: list[FailurePlan]
) -> Generator[int, None, None]:
    """Fire the planned failures at their scheduled times.

    Liveness is re-checked at fire time: the static plan validation
    cannot see failures injected by phase-targeted triggers or repairs
    delayed by a pending recovery, so a plan entry may target a node
    that is (still) dead when its time arrives.  Failing a dead node is
    meaningless under the fail-silent model, so the entry becomes a
    recorded no-op (``stats.n_failures_skipped``) instead of an error
    mid-run.
    """
    for failure in sorted(plan, key=lambda f: f.time):
        delay = failure.time - machine.engine.now
        if delay > 0:
            yield delay
        if not machine.coordinator.active:
            return  # the computation already finished
        if not machine.nodes[failure.node].alive:
            machine.stats.n_failures_skipped += 1
            continue
        machine.fail_node(
            failure.node,
            permanent=failure.permanent,
            repair_delay=failure.repair_delay,
        )
