"""The fault-injection and membership-injection simulation processes."""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.fault.failures import FailurePlan, MembershipEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine


def fault_injector(
    machine: "Machine", plan: list[FailurePlan]
) -> Generator[int, None, None]:
    """Fire the planned failures at their scheduled times.

    Liveness is re-checked at fire time against *dynamic* membership:
    the static plan validation cannot see failures injected by
    phase-targeted triggers, repairs delayed by a pending recovery, or
    joins that a failure earlier in the run aborted — so a plan entry
    may target a node that is (still, or again) dead when its time
    arrives.  Failing a dead node is meaningless under the fail-silent
    model, so the entry becomes a recorded no-op
    (``stats.n_failures_skipped``) instead of an error mid-run.  (A
    joined-then-killed slot is simply dead: the same check covers it.)
    """
    for failure in sorted(plan, key=lambda f: f.time):
        delay = failure.time - machine.engine.now
        if delay > 0:
            yield delay
        if not machine.coordinator.active:
            return  # the computation already finished
        if not machine.nodes[failure.node].alive:
            machine.stats.n_failures_skipped += 1
            continue
        machine.fail_node(
            failure.node,
            permanent=failure.permanent,
            repair_delay=failure.repair_delay,
        )


def membership_injector(
    machine: "Machine", plan: list[MembershipEvent]
) -> Generator[int, None, None]:
    """Fire the planned membership events at their scheduled times.

    Joins run ``machine.join_node`` inline — this process *is* the
    join's catch-up, so overlapping joins in one plan serialize in time
    order.  Handoffs resolve their target at fire time: an explicit
    target that is not a participant (it died, or its join was aborted)
    becomes a recorded no-op like a stale failure-plan entry.
    """
    coordinator = machine.coordinator
    for event in sorted(plan, key=lambda e: e.time):
        delay = event.time - machine.engine.now
        if delay > 0:
            yield delay
        if not coordinator.active:
            return  # the computation already finished
        if event.kind == "join":
            if machine.nodes[event.node].joined:
                continue  # superseded (already admitted by a harness)
            yield from machine.join_node(event.node)
        else:
            target = event.node if event.node >= 0 else None
            if target is not None and target not in coordinator.participants:
                machine.stats.n_failures_skipped += 1
                continue
            cost = coordinator.request_leader_handoff("ckpt", target=target)
            if cost:
                yield cost
