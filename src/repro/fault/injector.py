"""The fault-injection simulation process."""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

from repro.fault.failures import FailurePlan

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine


def fault_injector(
    machine: "Machine", plan: list[FailurePlan]
) -> Generator[int, None, None]:
    """Fire the planned failures at their scheduled times."""
    for failure in sorted(plan, key=lambda f: f.time):
        delay = failure.time - machine.engine.now
        if delay > 0:
            yield delay
        if not machine.coordinator.active:
            return  # the computation already finished
        machine.fail_node(
            failure.node,
            permanent=failure.permanent,
            repair_delay=failure.repair_delay,
        )
