"""Stall detection for fault-injected runs.

A protocol bug in a coordination window — a barrier waiting on a member
that will never arrive, a leader that died after everyone else finished
its episode, a revival that never fires — does not crash the simulator:
it leaves the machine spinning (or event-starved) with work still
pending, which under an orchestrated campaign means a worker silently
eating its whole task timeout.

:func:`stall_watchdog` is a simulation process that converts such a
livelock into a diagnosable failure: if no references retire *and* no
checkpoint/recovery epoch or phase advances for ``budget`` cycles while
work is still outstanding, it raises :class:`StallError` carrying a
full diagnostic dump — coordinator phase and leaders, barrier
membership vs. arrivals, per-node liveness/park state and stream
positions — so the stall is debuggable from the campaign report alone.
"""

from __future__ import annotations

from typing import Generator, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine import Machine

#: Default no-progress budget (cycles) before a run is declared stalled.
DEFAULT_STALL_BUDGET = 200_000


class StallError(RuntimeError):
    """The machine made no progress for the configured cycle budget."""

    def __init__(self, message: str, diagnostic: str):
        super().__init__(f"{message}\n{diagnostic}")
        self.diagnostic = diagnostic


def _barrier_dump(name: str, barrier) -> str:
    if barrier is None:
        return f"  {name}: none"
    missing = sorted(barrier.expected - barrier.arrived)
    return (
        f"  {name}: expected={sorted(barrier.expected)} "
        f"arrived={sorted(barrier.arrived)} missing={missing} "
        f"generation={barrier.generation}"
    )


def stall_diagnostic(machine: "Machine") -> str:
    """Human-readable dump of everything a stalled run can tell us."""
    coord = machine.coordinator
    lines = [
        f"t={machine.engine.now} "
        f"(last retire t={coord.last_retire_time}, "
        f"{machine.engine.pending_events()} events pending)",
        f"coordinator: ckpt_phase={coord.ckpt_phase!r} "
        f"epoch={coord.ckpt_epoch} requested={coord.ckpt_requested} "
        f"abort={coord.ckpt_abort} leader={coord.ckpt_leader}",
        f"             rec_phase={coord.rec_phase!r} "
        f"epoch={coord.recovery_epoch} requested={coord.recovery_requested} "
        f"leader={coord.rec_leader}",
        f"participants={sorted(coord.participants)} "
        f"active={sorted(coord.active)} "
        f"detected={sorted(machine._detected)} "
        f"pending_revival={dict(sorted(machine._pending_revival.items()))}",
        _barrier_dump("ckpt_barrier", coord.ckpt_barrier),
        _barrier_dump("rec_barrier", coord.rec_barrier),
        "nodes:",
    ]
    for processor in machine.processors:
        node = machine.nodes[processor.node_id]
        remaining = sum(s.remaining for s in processor.streams)
        lines.append(
            f"  node {node.node_id}: "
            f"{'alive' if node.alive else 'DEAD'}"
            f"{' permanent' if node.node_id in machine._permanently_dead else ''}"
            f" parked={processor.parked} streams={len(processor.streams)} "
            f"refs_remaining={remaining}"
        )
    transport = getattr(machine, "transport", None)
    if transport is not None:
        lines.extend(transport.dump().lines())
    return "\n".join(lines)


def stall_watchdog(
    machine: "Machine", budget: int = DEFAULT_STALL_BUDGET
) -> Generator[int, None, None]:
    """Simulation process: abort the run when progress stops.

    Progress means references retiring or the coordination state
    machine moving (epoch, phase, commit/recovery completion, failure
    handling, membership change).  The watchdog also keeps the event
    heap non-empty while work is outstanding, so an event-starved
    deadlock (every process parked on a flag that never fires) is
    detected instead of silently ending the run with work left.
    """
    if budget <= 0:
        raise ValueError("stall budget must be positive")
    poll = max(1, budget // 8)
    coord = machine.coordinator
    stats = machine.stats
    last_signature: tuple | None = None
    last_progress = machine.engine.now
    while True:
        yield poll
        work_left = any(not s.exhausted for s in machine.all_streams())
        coordinating = (
            coord.ckpt_requested
            or coord.recovery_requested
            or bool(machine._pending_revival)
        )
        if not work_left and not coordinating:
            return
        signature = (
            stats.refs,
            stats.n_checkpoints,
            stats.n_recoveries,
            stats.n_failures,
            coord.ckpt_epoch,
            coord.ckpt_phase,
            coord.recovery_epoch,
            coord.rec_phase,
            len(coord.participants),
            len(machine._pending_revival),
        )
        if signature != last_signature:
            last_signature = signature
            last_progress = machine.engine.now
        elif machine.engine.now - last_progress >= budget:
            raise StallError(
                f"no progress for {machine.engine.now - last_progress} cycles "
                f"(budget {budget}) with work outstanding",
                stall_diagnostic(machine),
            )
