"""Randomized fault-injection campaigns.

A campaign turns the fault machinery into a statistical test oracle:
hundreds of independently seeded cells, each a complete ECP run under a
distribution-driven failure load — exponential (MTBF) inter-arrival
times, uniformly drawn victims, a transient/permanent mix respecting
the paper's fault model — optionally sharpened by one *phase-targeted*
trigger ("kill the checkpoint leader during commit", "transient during
the recovery scan").  Every run terminates in exactly one
:class:`~repro.fault.outcomes.Outcome`; a healthy simulator produces
zero ``SIMULATOR_BUG`` and zero ``STALLED`` cells no matter the seed.

Cells are plain data (:class:`CampaignCell`), content-addressed like
sweep cells, executed through the same parallel / cached / journaled
machinery (:mod:`repro.orch`), and therefore resumable: a killed
campaign continues where it stopped, and re-running with the same
master seed replays bit-identical cells.
"""

from __future__ import annotations

import hashlib
import json
import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.fault.failures import FailurePlan, MembershipEvent
from repro.fault.outcomes import Outcome, RunOutcome, run_and_classify
from repro.fault.triggers import (
    JOINER, LEADER, RANDOM, PhaseTrigger, attach_trigger_injector,
)
from repro.machine import TRIGGER_WINDOWS, Machine
from repro.workloads.datacenter import ScanAnalytics, ZipfKV
from repro.workloads.splash import Water
from repro.workloads.synthetic import MigratoryShared, PrivateOnly, UniformShared

#: Bump when the cell parameter surface changes incompatibly; old cache
#: records then hash differently and are recomputed.  v3: outcomes grew
#: checkpoint-pollution metrics, so v2 records (which would read back
#: as all-zero pollution) are invalidated wholesale.  v4: cells carry a
#: recovery strategy; v3 records predate the strategy field and cannot
#: be trusted to have run the strategy the cell now names.  v5:
#: outcomes grew elastic-membership metrics (joins, catch-up bytes,
#: handoffs), so v4 records would read back as all-zero membership.
CAMPAIGN_SPEC_VERSION = 5

#: ``kind`` discriminator for campaign records in the result store.
CAMPAIGN_RECORD_KIND = "campaign-cell"

#: Workloads a campaign can drive: the small synthetic generators (the
#: original fault-path stressors), the datacenter-traffic family, whose
#: skewed/streaming access patterns pollute checkpoints very
#: differently from the uniform stressors, and water as the SPLASH
#: reference point (the paper's best case for the ECP).
CAMPAIGN_WORKLOADS = {
    "private": PrivateOnly,
    "uniform": UniformShared,
    "migratory": MigratoryShared,
    "zipf": ZipfKV,
    "scan": ScanAnalytics,
    "water": Water,
}

#: Campaign-sized parameter overrides.  Campaign machines run tiny
#: attraction memories (512 KB/node) to keep cells fast; the datacenter
#: generators' full-run defaults would not fit, and a COMA working set
#: that exceeds total AM is an invalid machine, not a fault.
CAMPAIGN_WORKLOAD_KW = {
    "zipf": {"keyspace_items": 1024, "clients_per_proc": 8},
    "scan": {"pressure_ratio": 2.0, "am_bytes": 128 * 1024},
    # water's regions shrink with scale; 1/8 keeps the per-node private
    # working set inside a campaign AM while the cell's refs_per_proc
    # budget (not scale) sets the stream length
    "water": {"scale": 0.125},
}

#: Windows a *static-membership* campaign can enter.  The membership
#: windows (``join_catchup``, ``leader_handoff``) only open when a
#: membership plan fires events, so static mixed campaigns must not
#: cycle through them — a trigger aimed at a window that never opens is
#: a guaranteed no-op cell.  (They sit at the *end* of
#: ``TRIGGER_WINDOWS`` precisely so this split keeps the static mixed
#: cycling, and therefore every static cell, bit-identical to v4.)
STATIC_WINDOWS = tuple(
    w for w in TRIGGER_WINDOWS if w not in ("join_catchup", "leader_handoff")
)

#: Per-cell targeting modes: purely timed (MTBF-only) or one trigger
#: aimed at a named window.  ``mixed`` campaigns cycle through all of
#: these so every window is exercised.
TARGET_MODES = ("timed",) + STATIC_WINDOWS

#: The mixed-mode cycle for rolling-membership campaigns: every static
#: window plus the two membership windows.
ROLLING_TARGET_MODES = ("timed",) + TRIGGER_WINDOWS


@dataclass(frozen=True)
class CampaignConfig:
    """The knobs of one campaign (everything derives from these)."""

    seeds: int = 200
    master_seed: int = 2026
    app: str = "private"
    n_nodes: int = 8
    refs_per_proc: int = 2_500
    #: Mean cycles between generated failures (exponential arrivals).
    mtbf_cycles: int = 40_000
    #: Probability a generated failure is transient (vs. permanent; at
    #: most one permanent per cell regardless).
    transient_fraction: float = 0.85
    #: Mean transient repair delay (jittered per failure).
    repair_delay: int = 2_000
    #: Checkpoint period override (cycles).
    period: int = 6_000
    detection_latency: int = 200
    #: ``mixed`` (default), ``timed``, or one window name.
    target_phase: str = "mixed"
    stall_budget: int = 100_000
    #: Interconnect fault knobs (repro.network.transport); all zero
    #: keeps the transport on its pay-for-use fast path.
    loss_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    outage_rate: float = 0.0
    #: Recovery backend (repro.recovery) every cell runs under.
    recovery_strategy: str = "ecp"
    #: ``static`` (default) or ``rolling``: rolling cells start with
    #: ``grow_from`` members on an ``n_nodes``-capacity machine and
    #: admit the remaining slots mid-run until ``grow_to`` are serving.
    membership: str = "static"
    #: Rolling only: members at t=0.  Zero derives ``n_nodes - 2``.
    grow_from: int = 0
    #: Rolling only: members after all joins.  Zero derives ``n_nodes``.
    grow_to: int = 0

    def __post_init__(self) -> None:
        from repro.recovery import STRATEGIES

        if self.recovery_strategy not in STRATEGIES:
            raise ValueError(
                f"unknown recovery strategy {self.recovery_strategy!r}; "
                f"pick one of {', '.join(sorted(STRATEGIES))}"
            )
        if self.membership not in ("static", "rolling"):
            raise ValueError(
                f"unknown membership mode {self.membership!r}; pick "
                "'static' or 'rolling'"
            )
        if self.membership == "rolling":
            if self.grow_from == 0:
                object.__setattr__(self, "grow_from", max(1, self.n_nodes - 2))
            if self.grow_to == 0:
                object.__setattr__(self, "grow_to", self.n_nodes)
            if not 1 <= self.grow_from < self.grow_to <= self.n_nodes:
                raise ValueError(
                    f"rolling membership needs 1 <= grow_from < grow_to <= "
                    f"n_nodes, got {self.grow_from} -> {self.grow_to} on "
                    f"{self.n_nodes} nodes"
                )
        elif self.grow_from or self.grow_to:
            raise ValueError(
                "grow_from/grow_to only apply to --membership rolling"
            )
        if self.seeds <= 0:
            raise ValueError("a campaign needs at least one seed")
        for name in ("loss_rate", "dup_rate", "reorder_rate", "outage_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{name} must be in [0, 1)")
        if self.app not in CAMPAIGN_WORKLOADS:
            raise ValueError(
                f"unknown campaign app {self.app!r}; pick one of "
                f"{', '.join(sorted(CAMPAIGN_WORKLOADS))}"
            )
        modes = (
            ROLLING_TARGET_MODES if self.membership == "rolling"
            else TARGET_MODES
        )
        if self.target_phase != "mixed" and self.target_phase not in modes:
            raise ValueError(
                f"unknown target phase {self.target_phase!r}; pick 'mixed', "
                f"'timed' or one of {', '.join(modes[1:])}"
            )
        if self.mtbf_cycles <= 0:
            raise ValueError("MTBF must be positive")
        if not 0.0 <= self.transient_fraction <= 1.0:
            raise ValueError("transient fraction must be in [0, 1]")
        if self.stall_budget <= 0:
            raise ValueError("stall budget must be positive")

    def to_dict(self) -> dict:
        return {
            "seeds": self.seeds,
            "master_seed": self.master_seed,
            "app": self.app,
            "n_nodes": self.n_nodes,
            "refs_per_proc": self.refs_per_proc,
            "mtbf_cycles": self.mtbf_cycles,
            "transient_fraction": self.transient_fraction,
            "repair_delay": self.repair_delay,
            "period": self.period,
            "detection_latency": self.detection_latency,
            "target_phase": self.target_phase,
            "stall_budget": self.stall_budget,
            "loss_rate": self.loss_rate,
            "dup_rate": self.dup_rate,
            "reorder_rate": self.reorder_rate,
            "outage_rate": self.outage_rate,
            "recovery_strategy": self.recovery_strategy,
            "membership": self.membership,
            "grow_from": self.grow_from,
            "grow_to": self.grow_to,
        }


@dataclass(frozen=True)
class CampaignCell:
    """One fully materialized campaign run, in canonical plain-data
    form (hashable, picklable, replayable anywhere)."""

    index: int
    seed: int
    app: str
    n_nodes: int
    refs_per_proc: int
    period: int
    detection_latency: int
    stall_budget: int
    #: Timed failures, as ``FailurePlan`` field dicts, time-ordered.
    plan: tuple = ()
    #: Optional phase-targeted trigger, as ``PhaseTrigger`` field dict.
    trigger: dict | None = None
    #: Interconnect fault knobs (all zero: reliable links).
    loss_rate: float = 0.0
    dup_rate: float = 0.0
    reorder_rate: float = 0.0
    outage_rate: float = 0.0
    #: Recovery backend (repro.recovery) this cell runs under.
    recovery_strategy: str = "ecp"
    #: Members at t=0 (zero: all ``n_nodes``, i.e. static membership).
    initial_members: int = 0
    #: Membership events, as ``MembershipEvent`` field dicts, time-ordered.
    membership: tuple = ()

    # -- canonical form -------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "spec_version": CAMPAIGN_SPEC_VERSION,
            "kind": CAMPAIGN_RECORD_KIND,
            "index": self.index,
            "seed": self.seed,
            "app": self.app,
            "n_nodes": self.n_nodes,
            "refs_per_proc": self.refs_per_proc,
            "period": self.period,
            "detection_latency": self.detection_latency,
            "stall_budget": self.stall_budget,
            "plan": [dict(f) for f in self.plan],
            "trigger": dict(self.trigger) if self.trigger else None,
            "loss_rate": self.loss_rate,
            "dup_rate": self.dup_rate,
            "reorder_rate": self.reorder_rate,
            "outage_rate": self.outage_rate,
            "recovery_strategy": self.recovery_strategy,
            "initial_members": self.initial_members,
            "membership": [dict(e) for e in self.membership],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignCell":
        return cls(
            index=data["index"],
            seed=data["seed"],
            app=data["app"],
            n_nodes=data["n_nodes"],
            refs_per_proc=data["refs_per_proc"],
            period=data["period"],
            detection_latency=data["detection_latency"],
            stall_budget=data["stall_budget"],
            plan=tuple(dict(f) for f in data.get("plan", [])),
            trigger=dict(data["trigger"]) if data.get("trigger") else None,
            loss_rate=data.get("loss_rate", 0.0),
            dup_rate=data.get("dup_rate", 0.0),
            reorder_rate=data.get("reorder_rate", 0.0),
            outage_rate=data.get("outage_rate", 0.0),
            recovery_strategy=data.get("recovery_strategy", "ecp"),
            initial_members=data.get("initial_members", 0),
            membership=tuple(dict(e) for e in data.get("membership", [])),
        )

    @property
    def key(self) -> str:
        """Stable content hash (sha-256 over canonical JSON)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def label(self) -> str:
        mode = self.trigger["window"] if self.trigger else "timed"
        backend = (
            "" if self.recovery_strategy == "ecp"
            else f" strategy={self.recovery_strategy}"
        )
        growth = ""
        if self.initial_members:
            joins = sum(1 for e in self.membership if e["kind"] == "join")
            growth = f" members={self.initial_members}+{joins}"
        return (
            f"cell{self.index:03d} {self.app} seed={self.seed} "
            f"mode={mode} failures={len(self.plan)}{backend}{growth}"
        )

    # -- rehydration ----------------------------------------------------

    def failure_plan(self) -> list[FailurePlan]:
        return [FailurePlan(**f) for f in self.plan]

    def phase_trigger(self) -> PhaseTrigger | None:
        return PhaseTrigger(**self.trigger) if self.trigger else None

    def membership_plan(self) -> list[MembershipEvent]:
        return [MembershipEvent(**e) for e in self.membership]


def generate_membership_plan(
    rng: random.Random,
    grow_from: int,
    grow_to: int,
    period: int,
    horizon: int,
) -> list[MembershipEvent]:
    """Draw a rolling-membership plan: staggered joins plus handoffs.

    The ``grow_to - grow_from`` installed slots join one by one, spread
    over the middle of the run (each jittered by up to one checkpoint
    period, so joins land in every protocol phase across cells); one
    deliberate leadership handoff fires before the first join and a
    second, half the time, after the last — the elastic worst case of
    reconfiguring the coordinator while the membership is in motion.
    """
    n_joins = grow_to - grow_from
    spacing = max(period + 1, horizon // (n_joins + 2))
    events = [
        MembershipEvent(
            time=spacing * (k + 1) + rng.randrange(max(1, period)),
            kind="join",
            node=grow_from + k,
        )
        for k in range(n_joins)
    ]
    events.append(MembershipEvent(
        time=spacing // 2 + rng.randrange(max(1, period)), kind="handoff",
        node=rng.randrange(grow_from) if rng.random() < 0.3 else -1,
    ))
    if rng.random() < 0.5:
        events.append(MembershipEvent(
            time=spacing * (n_joins + 1) + rng.randrange(max(1, period)),
            kind="handoff",
        ))
    return sorted(events, key=lambda e: e.time)


def generate_failure_plan(
    rng: random.Random,
    n_nodes: int,
    mtbf_cycles: int,
    transient_fraction: float,
    repair_delay: int,
    horizon: int,
    initial_members: int | None = None,
    joins_at: dict[int, int] | None = None,
) -> list[FailurePlan]:
    """Draw a statically valid failure plan from the fault model.

    Inter-arrival times are exponential with mean ``mtbf_cycles``;
    victims are uniform over the nodes; each failure is transient with
    probability ``transient_fraction`` (repair delay jittered around
    the mean), permanent otherwise — but never more than one permanent
    per plan, and never a victim still down from an earlier failure
    (both would fail :func:`~repro.fault.failures.validate_failure_plan`).

    With ``initial_members``/``joins_at`` (rolling membership), victims
    drawn on a slot that has not joined yet are discarded like
    still-down victims — the fault model cannot fail hardware that is
    not a member.  The draw sequence is unchanged, so static plans stay
    bit-identical.
    """
    plan: list[FailurePlan] = []
    ready_at: dict[int, int] = {}
    permanent_used = False
    dead: set[int] = set()
    t = 0
    while True:
        t += max(1, int(rng.expovariate(1.0 / mtbf_cycles)))
        if t > horizon:
            return plan
        node = rng.randrange(n_nodes)
        if initial_members is not None and node >= initial_members:
            join_time = (joins_at or {}).get(node)
            if join_time is None or t < join_time:
                continue  # slot not a member yet: nothing to fail
        if node in dead or t <= ready_at.get(node, -1):
            continue  # victim still down: the model has nothing to fail
        transient = rng.random() < transient_fraction or permanent_used
        if transient:
            repair = max(1, int(repair_delay * (0.5 + rng.random())))
            ready_at[node] = t + repair
            plan.append(FailurePlan(time=t, node=node, repair_delay=repair))
        else:
            permanent_used = True
            dead.add(node)
            plan.append(FailurePlan(time=t, node=node, permanent=True))


def build_cells(cfg: CampaignConfig) -> list[CampaignCell]:
    """Materialize every cell of a campaign from the master seed.

    Deterministic: the same :class:`CampaignConfig` always yields the
    same cells (hence the same content keys, hence a fully cacheable
    and byte-reproducible campaign).
    """
    rng = random.Random(cfg.master_seed)
    # rough upper bound on run length; failures drawn past the actual
    # end are harmless (the injector exits when the computation does)
    horizon = cfg.refs_per_proc * 15
    rolling = cfg.membership == "rolling"
    members0 = cfg.grow_from if rolling else cfg.n_nodes
    mode_cycle = ROLLING_TARGET_MODES if rolling else TARGET_MODES
    cells: list[CampaignCell] = []
    for index in range(cfg.seeds):
        seed = rng.randrange(2**31)
        cell_rng = random.Random(seed)
        mode = (
            mode_cycle[index % len(mode_cycle)]
            if cfg.target_phase == "mixed"
            else cfg.target_phase
        )
        membership: list[MembershipEvent] = []
        joins_at: dict[int, int] = {}
        if rolling:
            membership = generate_membership_plan(
                cell_rng, cfg.grow_from, cfg.grow_to, cfg.period, horizon,
            )
            joins_at = {
                e.node: e.time for e in membership if e.kind == "join"
            }
        plan = generate_failure_plan(
            cell_rng, cfg.n_nodes, cfg.mtbf_cycles,
            cfg.transient_fraction, cfg.repair_delay, horizon,
            initial_members=members0 if rolling else None,
            joins_at=joins_at,
        )
        trigger = None
        if mode != "timed":
            if mode in ("recovery_scan", "reconfig") and not plan:
                # a recovery-window trigger needs a recovery to aim at:
                # guarantee at least one timed transient failure
                plan.append(FailurePlan(
                    time=cfg.period + cfg.detection_latency + 1,
                    node=cell_rng.randrange(members0),
                    repair_delay=cfg.repair_delay,
                ))
            if mode == "join_catchup":
                # the scenario worth aiming at is killing the joiner
                # itself mid-catch-up; a random victim covers the rest
                target = JOINER if cell_rng.random() < 0.7 else RANDOM
            else:
                target = LEADER if cell_rng.random() < 0.5 else RANDOM
            trigger = {
                "window": mode,
                "target": target,
                # permanents only in checkpoint windows: any failure
                # during a recovery window is expected-fatal anyway
                "permanent": (
                    mode.startswith("ckpt") and cell_rng.random() < 0.3
                ),
                "repair_delay": 0,
                "delay": cell_rng.randrange(0, 400),
                "occurrence": 1 if cell_rng.random() < 0.7 else 2,
            }
            if not trigger["permanent"]:
                trigger["repair_delay"] = cfg.repair_delay
        cells.append(CampaignCell(
            index=index,
            seed=seed,
            app=cfg.app,
            n_nodes=cfg.n_nodes,
            refs_per_proc=cfg.refs_per_proc,
            period=cfg.period,
            detection_latency=cfg.detection_latency,
            stall_budget=cfg.stall_budget,
            plan=tuple(
                {"time": f.time, "node": f.node, "permanent": f.permanent,
                 "repair_delay": f.repair_delay}
                for f in plan
            ),
            trigger=trigger,
            loss_rate=cfg.loss_rate,
            dup_rate=cfg.dup_rate,
            reorder_rate=cfg.reorder_rate,
            outage_rate=cfg.outage_rate,
            recovery_strategy=cfg.recovery_strategy,
            initial_members=members0 if rolling else 0,
            membership=tuple(
                {"time": e.time, "kind": e.kind, "node": e.node}
                for e in membership
            ),
        ))
    return cells


def execute_campaign_payload(payload: dict) -> dict:
    """Run one cell to a classified outcome (worker-process entry
    point: module-level, dict in, dict out)."""
    from repro.config import AMConfig, ArchConfig, CacheConfig

    cell = CampaignCell.from_dict(payload)
    cfg = ArchConfig(
        n_nodes=cell.n_nodes,
        seed=cell.seed,
        am=AMConfig(size_bytes=512 * 1024),
        cache=CacheConfig(size_bytes=32 * 1024),
    ).with_ft(
        checkpoint_period_override=cell.period,
        detection_latency=cell.detection_latency,
    ).with_transport(
        loss_rate=cell.loss_rate,
        dup_rate=cell.dup_rate,
        reorder_rate=cell.reorder_rate,
        outage_rate=cell.outage_rate,
    )
    # the cell seed drives the reference stream too, so cells vary in
    # both fault timing and workload content (v3; v2 cells shared one
    # stream per app)
    workload = CAMPAIGN_WORKLOADS[cell.app](
        cell.n_nodes, refs_per_proc=cell.refs_per_proc, seed=cell.seed,
        **CAMPAIGN_WORKLOAD_KW.get(cell.app, {}),
    )
    machine = Machine(
        cfg, workload,
        protocol="ecp",
        recovery_strategy=cell.recovery_strategy,
        failure_plan=cell.failure_plan(),
        stall_cycle_budget=cell.stall_budget,
        initial_members=cell.initial_members or None,
        membership_plan=cell.membership_plan(),
    )
    trigger = cell.phase_trigger()
    # always attach the injector — with an empty trigger list it is the
    # campaign's window-coverage probe
    injector = attach_trigger_injector(
        machine,
        [trigger] if trigger else [],
        rng=random.Random(cell.seed ^ 0x7A11),
    )
    return run_and_classify(machine, injector).to_dict()


@dataclass
class CampaignReport:
    """Aggregated campaign results (JSON-able)."""

    config: dict
    n_cells: int = 0
    from_cache: int = 0
    executed: int = 0
    outcome_counts: dict = field(default_factory=dict)
    #: window -> total entries across all runs.
    window_coverage: dict = field(default_factory=dict)
    #: window -> {planned, fired, skipped} trigger accounting.
    trigger_coverage: dict = field(default_factory=dict)
    total_rollback_refs: int = 0
    total_recoveries: int = 0
    total_recovery_cycles: int = 0
    total_ckpt_bytes_replicated: int = 0
    total_ckpt_items_replicated: int = 0
    total_ckpt_items_reused: int = 0
    #: workload class (splash/synthetic/datacenter/trace) -> aggregated
    #: ECP metrics: checkpoint pollution, work lost, rollback distance,
    #: recovery latency.
    class_metrics: dict = field(default_factory=dict)
    #: recovery strategy -> the same aggregated metrics plus the
    #: per-strategy outcome taxonomy (the head-to-head table's rows).
    strategy_metrics: dict = field(default_factory=dict)
    total_failures_skipped: int = 0
    # elastic-membership aggregates (all zero on static campaigns)
    total_joins: int = 0
    total_joins_aborted: int = 0
    total_join_latency_cycles: int = 0
    total_catchup_bytes: int = 0
    total_refs_during_reconfig: int = 0
    total_handoffs: int = 0
    total_spurious_suspicions: int = 0
    total_transport_retries: int = 0
    total_transport_retransmitted_flits: int = 0
    total_transport_duplicates_suppressed: int = 0
    #: Per-cell records: index, seed, key, outcome, detail + metrics.
    cells: list = field(default_factory=list)
    #: Cells whose *worker* failed (infrastructure, not simulation).
    failed: list = field(default_factory=list)
    #: Which executor computed the cells ("local" or "distributed").
    executor: str = "local"
    #: Distributed dispatch stats (reassignments, worker deaths,
    #: per-worker throughput) when a DistributedExecutor ran them.
    dispatch: dict | None = None

    @property
    def defects(self) -> int:
        return (
            self.outcome_counts.get(Outcome.SIMULATOR_BUG.value, 0)
            + self.outcome_counts.get(Outcome.STALLED.value, 0)
        )

    @property
    def ok(self) -> bool:
        """Zero defects, zero infra failures, every cell classified."""
        return (
            not self.failed
            and self.defects == 0
            and sum(self.outcome_counts.values()) == self.n_cells
        )

    def mean_recovery_latency(self) -> float:
        if self.total_recoveries == 0:
            return 0.0
        return self.total_recovery_cycles / self.total_recoveries

    def mean_join_latency(self) -> float:
        completed = self.total_joins - self.total_joins_aborted
        if completed <= 0:
            return 0.0
        return self.total_join_latency_cycles / completed

    def to_dict(self) -> dict:
        return {
            "config": self.config,
            "n_cells": self.n_cells,
            "from_cache": self.from_cache,
            "executed": self.executed,
            "outcome_counts": dict(self.outcome_counts),
            "window_coverage": dict(self.window_coverage),
            "trigger_coverage": dict(self.trigger_coverage),
            "total_rollback_refs": self.total_rollback_refs,
            "total_recoveries": self.total_recoveries,
            "total_recovery_cycles": self.total_recovery_cycles,
            "total_ckpt_bytes_replicated": self.total_ckpt_bytes_replicated,
            "total_ckpt_items_replicated": self.total_ckpt_items_replicated,
            "total_ckpt_items_reused": self.total_ckpt_items_reused,
            "class_metrics": {
                cls: dict(metrics) for cls, metrics in self.class_metrics.items()
            },
            "strategy_metrics": {
                name: dict(metrics)
                for name, metrics in self.strategy_metrics.items()
            },
            "total_failures_skipped": self.total_failures_skipped,
            "total_joins": self.total_joins,
            "total_joins_aborted": self.total_joins_aborted,
            "total_join_latency_cycles": self.total_join_latency_cycles,
            "total_catchup_bytes": self.total_catchup_bytes,
            "total_refs_during_reconfig": self.total_refs_during_reconfig,
            "total_handoffs": self.total_handoffs,
            "mean_join_latency": self.mean_join_latency(),
            "total_spurious_suspicions": self.total_spurious_suspicions,
            "total_transport_retries": self.total_transport_retries,
            "total_transport_retransmitted_flits":
                self.total_transport_retransmitted_flits,
            "total_transport_duplicates_suppressed":
                self.total_transport_duplicates_suppressed,
            "mean_recovery_latency": self.mean_recovery_latency(),
            "defects": self.defects,
            "ok": self.ok,
            "cells": list(self.cells),
            "failed": list(self.failed),
            "executor": self.executor,
            "dispatch": dict(self.dispatch) if self.dispatch else None,
        }

    def format(self) -> str:
        from repro.stats.report import format_table

        lines = [format_table(
            ["outcome", "runs"],
            [(o.value, self.outcome_counts.get(o.value, 0)) for o in Outcome],
        )]
        coverage_rows = []
        for window in TRIGGER_WINDOWS:
            trig = self.trigger_coverage.get(window, {})
            coverage_rows.append((
                window,
                self.window_coverage.get(window, 0),
                trig.get("planned", 0),
                trig.get("fired", 0),
                trig.get("skipped", 0),
            ))
        lines.append(format_table(
            ["window", "entered", "triggers", "fired", "skipped"],
            coverage_rows,
        ))
        dispatch_rows = []
        if self.dispatch is not None:
            dispatch_rows = [
                ("workers connected", self.dispatch.get("connected", 0)),
                ("cells reassigned", self.dispatch.get("reassignments", 0)),
                ("worker deaths", self.dispatch.get("worker_deaths", 0)),
            ]
        lines.append(format_table(["campaign", "value"], [
            ("cells", self.n_cells),
            ("executor", self.executor),
            *dispatch_rows,
            ("from cache", self.from_cache),
            ("executed", self.executed),
            ("worker failures", len(self.failed)),
            ("recoveries", self.total_recoveries),
            ("mean recovery latency", f"{self.mean_recovery_latency():.0f} cycles"),
            ("work lost to rollbacks", f"{self.total_rollback_refs} refs"),
            ("checkpoint pollution", f"{self.total_ckpt_bytes_replicated} bytes"),
            ("ckpt items replicated", self.total_ckpt_items_replicated),
            ("ckpt items reused", self.total_ckpt_items_reused),
            ("failures skipped", self.total_failures_skipped),
            *(
                [
                    ("joins completed",
                     self.total_joins - self.total_joins_aborted),
                    ("joins aborted", self.total_joins_aborted),
                    ("mean join latency",
                     f"{self.mean_join_latency():.0f} cycles"),
                    ("catch-up traffic", f"{self.total_catchup_bytes} bytes"),
                    ("refs served during reconfig",
                     self.total_refs_during_reconfig),
                    ("leadership handoffs", self.total_handoffs),
                ]
                if self.total_joins or self.total_handoffs
                else []
            ),
            ("spurious suspicions", self.total_spurious_suspicions),
            ("transport retries", self.total_transport_retries),
            ("retransmitted flits", self.total_transport_retransmitted_flits),
            ("duplicates suppressed", self.total_transport_duplicates_suppressed),
            ("verdict", "OK" if self.ok else "DEFECTS FOUND"),
        ]))
        if self.class_metrics:
            lines.append(format_table(
                ["class", "cells", "ckpt bytes", "work lost",
                 "rollback dist", "recovery lat"],
                [
                    (
                        cls,
                        m.get("cells", 0),
                        m.get("ckpt_bytes_replicated", 0),
                        m.get("rollback_refs", 0),
                        f"{m.get('mean_rollback_distance', 0.0):.0f} refs",
                        f"{m.get('mean_recovery_latency', 0.0):.0f} cyc",
                    )
                    for cls, m in sorted(self.class_metrics.items())
                ],
            ))
        if self.strategy_metrics:
            lines.append(format_table(
                ["strategy", "cells", "ckpt bytes", "work lost",
                 "rollback dist", "recovery lat"],
                [
                    (
                        name,
                        m.get("cells", 0),
                        m.get("ckpt_bytes_replicated", 0),
                        m.get("rollback_refs", 0),
                        f"{m.get('mean_rollback_distance', 0.0):.0f} refs",
                        f"{m.get('mean_recovery_latency', 0.0):.0f} cyc",
                    )
                    for name, m in sorted(self.strategy_metrics.items())
                ],
            ))
            if any(
                m.get("n_joins") or m.get("n_handoffs")
                for m in self.strategy_metrics.values()
            ):
                lines.append(format_table(
                    ["strategy", "joins", "aborted", "join lat",
                     "catch-up", "refs@reconfig", "handoffs"],
                    [
                        (
                            name,
                            m.get("n_joins", 0),
                            m.get("joins_aborted", 0),
                            f"{m.get('mean_join_latency', 0.0):.0f} cyc",
                            f"{m.get('catchup_bytes', 0)} B",
                            m.get("refs_during_reconfig", 0),
                            m.get("n_handoffs", 0),
                        )
                        for name, m in sorted(self.strategy_metrics.items())
                    ],
                ))
            for name, m in sorted(self.strategy_metrics.items()):
                taxonomy = ", ".join(
                    f"{outcome}={count}"
                    for outcome, count in sorted(m.get("outcomes", {}).items())
                )
                lines.append(f"outcomes[{name}]: {taxonomy or 'none'}")
        defect_cells = [
            c for c in self.cells
            if c["outcome"] in (Outcome.SIMULATOR_BUG.value, Outcome.STALLED.value)
        ]
        for cell in defect_cells[:5]:
            lines.append(
                f"defect: cell {cell['index']} (seed {cell['seed']}, "
                f"key {cell['key'][:12]}) -> {cell['outcome']}: {cell['detail']}"
            )
            if cell.get("diagnostic"):
                lines.append(cell["diagnostic"])
        if len(defect_cells) > 5:
            lines.append(f"... and {len(defect_cells) - 5} more defect cells")
        return "\n\n".join(lines)


class CampaignRunner:
    """Drive a campaign through the orch executor/cache/journal."""

    def __init__(self, config: CampaignConfig, store=None):
        self.config = config
        self.store = store
        self.cells = build_cells(config)

    @property
    def journal(self):
        from repro.orch.journal import Journal

        if self.store is None:
            return None
        return Journal(self.store.root / "campaign-journal.jsonl")

    def run(
        self,
        parallel: int = 1,
        resume: bool = False,
        read_cache: bool = True,
        task_timeout: float | None = None,
        max_retries: int = 1,
        progress: Callable[[str], None] | None = None,
        executor=None,
        on_cell: Callable[[dict], None] | None = None,
    ) -> CampaignReport:
        """Complete every cell of the campaign.

        ``executor`` is anything matching the
        :class:`~repro.orch.executor.LocalExecutor` interface (pass a
        :class:`~repro.distributed.DistributedExecutor` to shard cells
        over worker daemons); ``on_cell`` receives one structured dict
        per terminal cell — the live feed ``repro serve`` renders.
        """
        from repro.orch.executor import LocalExecutor

        if executor is None:
            executor = LocalExecutor(
                parallel=parallel, task_timeout=task_timeout,
                max_retries=max_retries,
            )
        parallel = executor.parallel
        journal = self.journal
        say = progress or (lambda _msg: None)
        emit = on_cell or (lambda _event: None)
        completed = (
            journal.completed_keys() if (resume and journal is not None) else set()
        )

        report = CampaignReport(config=self.config.to_dict(),
                                n_cells=len(self.cells),
                                executor=getattr(executor, "name", "local"))
        outcomes: dict[int, RunOutcome] = {}
        pending: list[CampaignCell] = []
        for cell in self.cells:
            cached = None
            if self.store is not None and (read_cache or cell.key in completed):
                cached = self.store.load_payload(cell.key, CAMPAIGN_RECORD_KIND)
            if cached is not None:
                outcomes[cell.index] = RunOutcome.from_dict(cached)
                report.from_cache += 1
                say(f"cached   {cell.label()} -> {cached['outcome']}")
                emit({"index": cell.index, "label": cell.label(),
                      "source": "cached", "outcome": cached["outcome"],
                      "wall_seconds": 0.0})
            else:
                pending.append(cell)

        if journal is not None:
            journal.run_started(len(pending), parallel, resume)
        for task in executor.run(
            [cell.to_dict() for cell in pending],
            execute_campaign_payload,
            on_start=lambda _i, p: (
                journal.task_started(
                    CampaignCell.from_dict(p).key, CampaignCell.from_dict(p).label()
                ) if journal is not None else None
            ),
        ):
            cell = pending[task.index]
            if task.ok:
                outcomes[cell.index] = RunOutcome.from_dict(task.value)
                report.executed += 1
                # store record first, journal line second: a journaled
                # completion always has a durable record behind it
                if self.store is not None:
                    self.store.save_payload(
                        cell.key, CAMPAIGN_RECORD_KIND, cell.to_dict(),
                        task.value, wall_seconds=task.wall_seconds,
                    )
                if journal is not None:
                    journal.task_completed(
                        cell.key, cell.label(), task.wall_seconds, source="run"
                    )
                say(f"ran      {cell.label()} -> {task.value['outcome']}")
                emit({"index": cell.index, "label": cell.label(),
                      "source": "ran", "outcome": task.value["outcome"],
                      "wall_seconds": task.wall_seconds})
            else:
                error = task.error or "timed out"
                report.failed.append({
                    "index": cell.index, "seed": cell.seed, "key": cell.key,
                    "error": error, "attempts": task.attempts,
                })
                if journal is not None:
                    journal.task_failed(cell.key, cell.label(), error, task.attempts)
                say(f"FAILED   {cell.label()}: {error}")
                emit({"index": cell.index, "label": cell.label(),
                      "source": "failed", "outcome": None,
                      "wall_seconds": task.wall_seconds, "error": error})
        last_stats = getattr(executor, "last_stats", None)
        if last_stats is not None:
            report.dispatch = last_stats.to_dict()

        # -- aggregate ---------------------------------------------------
        from repro.workloads.registry import workload_class_of

        counts: Counter = Counter()
        windows: Counter = Counter()
        triggers: dict[str, Counter] = {}
        by_class: dict[str, Counter] = {}
        by_strategy: dict[str, Counter] = {}
        strategy_outcomes: dict[str, Counter] = {}
        for cell in self.cells:
            outcome = outcomes.get(cell.index)
            if outcome is None:
                continue  # worker failure: accounted in report.failed
            counts[outcome.outcome.value] += 1
            windows.update(outcome.windows_entered)
            if cell.trigger is not None:
                bucket = triggers.setdefault(cell.trigger["window"], Counter())
                bucket["planned"] += 1
                bucket["fired"] += outcome.triggers_fired
                bucket["skipped"] += outcome.triggers_skipped
            report.total_rollback_refs += outcome.rollback_refs
            report.total_recoveries += outcome.n_recoveries
            report.total_recovery_cycles += outcome.recovery_cycles
            report.total_ckpt_bytes_replicated += outcome.ckpt_bytes_replicated
            report.total_ckpt_items_replicated += outcome.ckpt_items_replicated
            report.total_ckpt_items_reused += outcome.ckpt_items_reused
            bucket = by_class.setdefault(workload_class_of(cell.app), Counter())
            bucket["cells"] += 1
            bucket["ckpt_bytes_replicated"] += outcome.ckpt_bytes_replicated
            bucket["ckpt_items_replicated"] += outcome.ckpt_items_replicated
            bucket["ckpt_items_reused"] += outcome.ckpt_items_reused
            bucket["rollback_refs"] += outcome.rollback_refs
            bucket["n_recoveries"] += outcome.n_recoveries
            bucket["recovery_cycles"] += outcome.recovery_cycles
            bucket["n_checkpoints"] += outcome.n_checkpoints
            sbucket = by_strategy.setdefault(cell.recovery_strategy, Counter())
            sbucket["cells"] += 1
            sbucket["ckpt_bytes_replicated"] += outcome.ckpt_bytes_replicated
            sbucket["ckpt_items_replicated"] += outcome.ckpt_items_replicated
            sbucket["ckpt_items_reused"] += outcome.ckpt_items_reused
            sbucket["rollback_refs"] += outcome.rollback_refs
            sbucket["n_recoveries"] += outcome.n_recoveries
            sbucket["recovery_cycles"] += outcome.recovery_cycles
            sbucket["n_checkpoints"] += outcome.n_checkpoints
            sbucket["n_joins"] += outcome.n_joins
            sbucket["joins_aborted"] += outcome.joins_aborted
            sbucket["join_latency_cycles"] += outcome.join_latency_cycles
            sbucket["catchup_bytes"] += outcome.catchup_bytes
            sbucket["refs_during_reconfig"] += outcome.refs_during_reconfig
            sbucket["n_handoffs"] += outcome.n_handoffs
            strategy_outcomes.setdefault(cell.recovery_strategy, Counter())[
                outcome.outcome.value
            ] += 1
            report.total_failures_skipped += outcome.n_failures_skipped
            report.total_joins += outcome.n_joins
            report.total_joins_aborted += outcome.joins_aborted
            report.total_join_latency_cycles += outcome.join_latency_cycles
            report.total_catchup_bytes += outcome.catchup_bytes
            report.total_refs_during_reconfig += outcome.refs_during_reconfig
            report.total_handoffs += outcome.n_handoffs
            report.total_spurious_suspicions += outcome.spurious_suspicions
            report.total_transport_retries += outcome.transport_retries
            report.total_transport_retransmitted_flits += (
                outcome.transport_retransmitted_flits
            )
            report.total_transport_duplicates_suppressed += (
                outcome.transport_duplicates_suppressed
            )
            record = {
                "index": cell.index,
                "seed": cell.seed,
                "key": cell.key,
                "mode": cell.trigger["window"] if cell.trigger else "timed",
                "outcome": outcome.outcome.value,
                "detail": outcome.detail,
                "n_failures": outcome.n_failures,
                "n_recoveries": outcome.n_recoveries,
                "rollback_refs": outcome.rollback_refs,
                "total_cycles": outcome.total_cycles,
            }
            if outcome.diagnostic:
                record["diagnostic"] = outcome.diagnostic
            report.cells.append(record)
        report.outcome_counts = dict(counts)
        report.window_coverage = dict(windows)
        report.trigger_coverage = {
            window: dict(bucket) for window, bucket in triggers.items()
        }
        for cls, bucket in by_class.items():
            recoveries = bucket["n_recoveries"]
            report.class_metrics[cls] = {
                **{k: int(v) for k, v in bucket.items()},
                "mean_rollback_distance": (
                    bucket["rollback_refs"] / recoveries if recoveries else 0.0
                ),
                "mean_recovery_latency": (
                    bucket["recovery_cycles"] / recoveries if recoveries else 0.0
                ),
            }
        for name, bucket in by_strategy.items():
            recoveries = bucket["n_recoveries"]
            joins_done = bucket["n_joins"] - bucket["joins_aborted"]
            report.strategy_metrics[name] = {
                **{k: int(v) for k, v in bucket.items()},
                "mean_rollback_distance": (
                    bucket["rollback_refs"] / recoveries if recoveries else 0.0
                ),
                "mean_recovery_latency": (
                    bucket["recovery_cycles"] / recoveries if recoveries else 0.0
                ),
                "mean_join_latency": (
                    bucket["join_latency_cycles"] / joins_done
                    if joins_done > 0 else 0.0
                ),
                "outcomes": dict(strategy_outcomes.get(name, Counter())),
            }
        if journal is not None:
            journal.run_completed({
                "n_cells": report.n_cells,
                "from_cache": report.from_cache,
                "executed": report.executed,
                "failed": len(report.failed),
                "defects": report.defects,
            })
        return report
