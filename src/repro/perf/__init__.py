"""Simulation-kernel performance instrumentation.

The ROADMAP's "fast as the hardware allows" goal only counts when it is
measured, so this package is the repository's perf instrument:

:mod:`repro.perf.bench`
    A fixed microbenchmark suite — engine events/sec, fabric
    flit-hops/sec, end-to-end cycles/sec on the reference workload at
    9/25/56 nodes plus the ``repro run`` reference configuration —
    writing ``BENCH_kernel.json`` with an environment fingerprint and
    an optional comparison against a committed baseline (``repro
    bench``, see docs/PERF.md).

:mod:`repro.perf.golden`
    The seeded determinism contract: reference runs whose
    ``comparable_result_dict`` digests are committed to
    ``tests/perf/golden/`` and asserted identical before and after any
    kernel fast path (fault-free and lossy-transport cells).
"""

from repro.perf.bench import (  # noqa: F401
    BenchReport,
    BenchRow,
    check_regression,
    run_suite,
)
from repro.perf.golden import (  # noqa: F401
    GOLDEN_CELLS,
    reference_run,
    result_digest,
)
