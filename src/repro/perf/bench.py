"""The ``repro bench`` microbenchmark suite.

Three layers are measured, mirroring the kernel's hot path from the
bottom up (every experiment funnels through them):

``engine``
    Raw event-dispatch throughput of :class:`repro.sim.engine.Engine`:
    a fixed population of self-rescheduling timers with a mix of
    zero-delay and short-delay wakeups (the pattern process stepping
    and flag firing generate), measured in events/sec.

``fabric``
    :class:`repro.network.fabric.MeshFabric` transfer throughput on an
    8x7 mesh with a seeded src/dst/packet mix, measured in
    flit-hops/sec (the unit link occupancy is charged in).

``end_to_end``
    Whole-machine ``Machine.run`` cycles/sec on the reference workload
    (water, ECP, 100 recovery points/s) at the paper's scalability
    corners 9/25/56 nodes, plus the exact ``repro run`` default
    configuration (16 nodes) whose cycles/sec is the headline number
    regressions are judged against.

Benchmarks are deterministic in *work* (seeded streams, fixed event
counts) and honest in *measurement* (wall clock); the JSON report
carries an environment fingerprint so numbers are only ever compared
within comparable environments (see docs/PERF.md).
"""

from __future__ import annotations

import gc
import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from random import Random

from repro import __version__
from repro.config import ArchConfig, LatencyConfig, mesh_dimensions
from repro.kernel import get_default_backend
from repro.machine import Machine
from repro.network.fabric import MeshFabric
from repro.network.topology import Mesh, Subnet
from repro.sim.engine import Engine
from repro.workloads.registry import make_workload

#: Report schema version (bump on incompatible layout changes).
SCHEMA = 1

#: Node counts for the end-to-end scalability rows (paper corners; 25
#: stands in for the mid-size machines as the largest square mesh the
#: quick profile still turns around fast).
SCALING_NODES = (9, 25, 56)

#: The ``repro run`` default configuration (the headline row).
REFERENCE_APP = "water"
REFERENCE_NODES = 16
REFERENCE_SCALE = 0.01
REFERENCE_SEED = 2026
REFERENCE_FREQUENCY_HZ = 100.0


@dataclass
class BenchRow:
    """One benchmark measurement."""

    key: str              # stable identity used for baseline matching
    bench: str            # engine | fabric | end_to_end
    metric: str           # events_per_sec | flit_hops_per_sec | cycles_per_sec
    value: float
    wall_seconds: float
    backend: str = "python"  # kernel backend the row was measured under
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "key": self.key,
            "bench": self.bench,
            "metric": self.metric,
            "value": self.value,
            "wall_seconds": self.wall_seconds,
            "backend": self.backend,
            "detail": dict(self.detail),
        }


@dataclass
class BenchReport:
    """The full suite result, serializable to ``BENCH_kernel.json``."""

    rows: list[BenchRow]
    environment: dict
    quick: bool
    baseline: dict | None = None

    def row(self, key: str, backend: str | None = None) -> BenchRow | None:
        """First row matching ``key`` (and ``backend``, when given)."""
        for row in self.rows:
            if row.key == key and (backend is None or row.backend == backend):
                return row
        return None

    def attach_baseline(self, path: str | Path) -> None:
        """Record baseline values and speedups for matching rows.

        Rows match per ``(key, backend)``; baseline rows written before
        backends existed carry no ``backend`` field and count as
        ``python`` measurements.
        """
        data = json.loads(Path(path).read_text(encoding="utf-8"))
        base_rows = {
            (r["key"], r.get("backend", "python")): r
            for r in data.get("rows", [])
        }
        comparison: dict[str, dict] = {}
        for row in self.rows:
            base = base_rows.get((row.key, row.backend))
            if base is None or not base.get("value"):
                continue
            comparison[f"{row.key}@{row.backend}"] = {
                "baseline_value": base["value"],
                "current_value": row.value,
                "speedup": row.value / base["value"],
            }
        self.baseline = {
            "path": str(path),
            "environment": data.get("environment", {}),
            "comparison": comparison,
        }

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "repro_version": __version__,
            "quick": self.quick,
            "environment": dict(self.environment),
            "rows": [row.to_dict() for row in self.rows],
            "baseline": self.baseline,
        }

    def write(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    def format(self) -> str:
        from repro.stats.report import format_table

        rows = []
        for row in self.rows:
            entry = [row.key, row.backend, row.metric, f"{row.value:,.0f}",
                     f"{row.wall_seconds:.2f}s"]
            ckey = f"{row.key}@{row.backend}"
            if self.baseline and ckey in self.baseline["comparison"]:
                entry.append(
                    f"{self.baseline['comparison'][ckey]['speedup']:.2f}x"
                )
            else:
                entry.append("-")
            rows.append(tuple(entry))
        return format_table(
            ["benchmark", "backend", "metric", "value", "wall", "vs baseline"],
            rows,
        )


def environment_fingerprint() -> dict:
    """Where these numbers were measured (numbers only compare within
    comparable environments)."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "repro_version": __version__,
    }


# -- engine -------------------------------------------------------------


def bench_engine(max_events: int) -> BenchRow:
    """Dispatch throughput of a fixed timer population.

    64 timers each cycle through delays (0, 1, 3, 7) — the zero-delay
    share mirrors process resumption and flag fire-outs, the short
    delays mirror protocol sleeps — so the heap stays at a realistic
    size while events churn through it.
    """
    engine = Engine()
    delays = (0, 1, 3, 7)

    def make_timer(slot: int):
        state = [slot]

        def tick() -> None:
            state[0] += 1
            engine.schedule(delays[state[0] & 3], tick)

        return tick

    for slot in range(64):
        engine.schedule(slot & 7, make_timer(slot))
    gc.collect()
    t0 = time.perf_counter()
    engine.run(max_events=max_events)
    wall = time.perf_counter() - t0
    return BenchRow(
        key="engine",
        bench="engine",
        metric="events_per_sec",
        value=engine.events_dispatched / wall if wall else 0.0,
        wall_seconds=wall,
        detail={"events": engine.events_dispatched, "timers": 64},
    )


# -- fabric -------------------------------------------------------------


def bench_fabric(n_transfers: int) -> BenchRow:
    """Transfer throughput on the paper's largest (8x7) mesh.

    A seeded mix of control and data packets between random node pairs;
    departure times advance slowly so a share of transfers genuinely
    contend while the rest hit idle links (exercising both the
    fast-forward and the fallback path).
    """
    mesh = Mesh(8, 7)
    latency = LatencyConfig()
    fabric = MeshFabric(mesh, latency)
    rng = Random(2026)
    n_nodes = mesh.n_nodes
    pairs = []
    for _ in range(n_transfers):
        src = rng.randrange(n_nodes)
        dst = rng.randrange(n_nodes)
        if dst == src:
            dst = (src + 1) % n_nodes
        flits = 4 if rng.random() < 0.7 else 36
        pairs.append((src, dst, flits))
    gc.collect()
    t0 = time.perf_counter()
    depart = 0
    for i, (src, dst, flits) in enumerate(pairs):
        fabric.transfer(src, dst, flits, Subnet.REQUEST, depart)
        depart += 2 + (i & 15)
    wall = time.perf_counter() - t0
    return BenchRow(
        key="fabric",
        bench="fabric",
        metric="flit_hops_per_sec",
        value=fabric.flits_carried / wall if wall else 0.0,
        wall_seconds=wall,
        detail={
            "transfers": fabric.messages_sent,
            "flit_hops": fabric.flits_carried,
            "mesh": "8x7",
        },
    )


# -- end to end ---------------------------------------------------------


def bench_end_to_end(
    n_nodes: int,
    scale: float,
    key: str | None = None,
    repeats: int = 2,
    app: str = REFERENCE_APP,
    backend: str | None = None,
) -> BenchRow:
    """``Machine.run`` cycles/sec on a registered workload (the
    reference app by default) under one kernel backend (the process
    default when ``backend`` is ``None``).

    The row reports the best of ``repeats`` identical runs: the work is
    deterministic, so the wall-clock minimum is the standard estimator
    of the noise floor (scheduler preemption and allocator state only
    ever add time).
    """
    if backend is None:
        backend = get_default_backend()
    best_wall = None
    best_result = None
    best_machine = None
    for _ in range(max(1, repeats)):
        cfg = ArchConfig(n_nodes=n_nodes, seed=REFERENCE_SEED).with_ft(
            checkpoint_frequency_hz=REFERENCE_FREQUENCY_HZ
        )
        wl = make_workload(
            app, n_procs=n_nodes, scale=scale, seed=REFERENCE_SEED
        )
        machine = Machine(cfg, wl, protocol="ecp", backend=backend)
        gc.collect()
        t0 = time.perf_counter()
        result = machine.run()
        wall = time.perf_counter() - t0
        if best_wall is None or wall < best_wall:
            best_wall, best_result, best_machine = wall, result, machine
    wall, result, machine = best_wall, best_result, best_machine
    return BenchRow(
        key=key or f"end_to_end_{n_nodes}",
        bench="end_to_end",
        metric="cycles_per_sec",
        value=result.total_cycles / wall if wall else 0.0,
        wall_seconds=wall,
        backend=backend,
        detail={
            "app": app,
            "protocol": "ecp",
            "n_nodes": n_nodes,
            "scale": scale,
            "total_cycles": result.total_cycles,
            "refs": result.stats.refs,
            "refs_per_sec": result.stats.refs / wall if wall else 0.0,
            "events_dispatched": machine.engine.events_dispatched,
            "n_checkpoints": result.stats.n_checkpoints,
        },
    )


# -- the suite ----------------------------------------------------------


def run_suite(
    quick: bool = False,
    progress=None,
    backends: tuple[str, ...] | None = None,
) -> BenchReport:
    """Run the full fixed suite; ``quick`` shrinks work for CI smoke.

    ``backends`` selects the kernel backends the end-to-end rows are
    measured under (default: the process-default backend only).  The
    engine and fabric benches exercise pure interpreter paths that no
    backend touches, so they run once and report as ``python``.
    """
    if backends is None:
        backends = (get_default_backend(),)

    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    engine_events = 200_000 if quick else 1_000_000
    fabric_transfers = 20_000 if quick else 100_000
    e2e_scale = 0.002 if quick else 0.01
    ref_scale = 0.002 if quick else REFERENCE_SCALE

    rows: list[BenchRow] = []
    note(f"engine: dispatching {engine_events:,} events...")
    rows.append(bench_engine(engine_events))
    note(f"fabric: {fabric_transfers:,} transfers on an 8x7 mesh...")
    rows.append(bench_fabric(fabric_transfers))
    for backend in backends:
        for n in SCALING_NODES:
            mesh_dimensions(n)  # sanity: rectangular counts only
            note(
                f"end-to-end [{backend}]: {REFERENCE_APP} on {n} nodes "
                f"(scale {e2e_scale})..."
            )
            rows.append(bench_end_to_end(n, e2e_scale, backend=backend))
        note(
            f"end-to-end reference [{backend}]: {REFERENCE_APP} on "
            f"{REFERENCE_NODES} nodes (scale {ref_scale}, the "
            f"`repro run` default)..."
        )
        rows.append(
            bench_end_to_end(
                REFERENCE_NODES, ref_scale, key="end_to_end_reference",
                backend=backend,
            )
        )
        # heavy-traffic rows: the datacenter generators stress the kernel
        # differently — zipf concentrates coherence traffic on hot pages,
        # scan streams misses through the attraction memory
        for app in ("zipf", "scan"):
            note(
                f"end-to-end heavy traffic [{backend}]: {app} on "
                f"{REFERENCE_NODES} nodes (scale {ref_scale})..."
            )
            rows.append(
                bench_end_to_end(
                    REFERENCE_NODES, ref_scale, key=f"end_to_end_{app}",
                    app=app, backend=backend,
                )
            )
    return BenchReport(
        rows=rows, environment=environment_fingerprint(), quick=quick
    )


# -- regression gate ----------------------------------------------------


def check_regression(
    report: BenchReport,
    baseline_path: str | Path,
    tolerance: float = 0.30,
    keys: tuple[str, ...] = ("engine",),
) -> list[str]:
    """Compare ``report`` against a committed baseline JSON.

    Rows compare per ``(key, backend)`` — a fast vector row can never
    mask a regression in the python row of the same key.  Baseline rows
    without a ``backend`` field count as ``python``.  Returns a list of
    human-readable failures; empty means no matching row regressed by
    more than ``tolerance`` (generous by design — the gate absorbs
    runner noise and only trips on real cliffs).
    """
    data = json.loads(Path(baseline_path).read_text(encoding="utf-8"))
    base_rows = {
        (r["key"], r.get("backend", "python")): r
        for r in data.get("rows", [])
    }
    failures = []
    for key in keys:
        rows = [row for row in report.rows if row.key == key]
        if not rows:
            failures.append(f"{key}: missing from current report")
            continue
        for row in rows:
            base = base_rows.get((key, row.backend))
            if base is None:
                failures.append(
                    f"{key}@{row.backend}: missing from baseline"
                )
                continue
            floor = base["value"] * (1.0 - tolerance)
            if row.value < floor:
                failures.append(
                    f"{key}@{row.backend}: {row.metric} {row.value:,.0f} "
                    f"is below {floor:,.0f} (baseline {base['value']:,.0f} "
                    f"- {tolerance:.0%} tolerance)"
                )
    return failures


# -- profiling ----------------------------------------------------------


def profile_reference(top: int = 25, quick: bool = False) -> str:
    """cProfile the reference end-to-end run; return a top-N table."""
    import cProfile
    import io
    import pstats

    cfg = ArchConfig(n_nodes=REFERENCE_NODES, seed=REFERENCE_SEED).with_ft(
        checkpoint_frequency_hz=REFERENCE_FREQUENCY_HZ
    )
    wl = make_workload(
        REFERENCE_APP,
        n_procs=REFERENCE_NODES,
        scale=0.002 if quick else REFERENCE_SCALE,
        seed=REFERENCE_SEED,
    )
    machine = Machine(cfg, wl, protocol="ecp")
    profiler = cProfile.Profile()
    profiler.enable()
    machine.run()
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue()


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin CLI
    """Standalone entry point (``python -m repro.perf.bench``)."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--out", default="BENCH_kernel.json")
    parser.add_argument("--backend", action="append", default=None,
                        metavar="NAME",
                        help="kernel backend for the end-to-end rows "
                        "(repeatable; default: all available)")
    args = parser.parse_args(argv)
    if args.backend is None:
        from repro.kernel import available_backends

        backends = available_backends()
    else:
        backends = tuple(args.backend)
    report = run_suite(quick=args.quick, backends=backends,
                       progress=lambda m: print(f"  {m}"))
    report.write(args.out)
    print(report.format())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
