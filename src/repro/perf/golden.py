"""The seeded determinism contract for kernel fast paths.

Every optimisation in this package's remit — batched event dispatch,
fabric fast-forward, memoized protocol lookups — must keep results
**bit-identical**: the same seed and config must produce the same
:func:`repro.orch.serialize.comparable_result_dict`.  This module pins
that contract with golden digests:

- :data:`GOLDEN_CELLS` names small reference runs (a fault-free 9-node
  water cell and the same cell on a 1%-loss interconnect, where the
  fabric fast-forward must coexist with retransmission accounting);
- :func:`result_digest` reduces a run result to a sha256 over the
  canonical JSON of its comparable dict;
- the digests live in ``tests/perf/golden/`` and are asserted by
  ``tests/perf/test_golden_digest.py``.

The committed digests were captured on the **pre-optimisation** kernel,
so the test passing proves the fast paths changed nothing observable.
Regenerate (only when a deliberate semantic change lands) with::

    PYTHONPATH=src python -m repro.perf.golden --write
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

from repro.config import ArchConfig
from repro.machine import Machine, RunResult
from repro.orch.serialize import comparable_result_dict
from repro.workloads.registry import make_workload

#: Where the committed digests live, relative to the repo root.
GOLDEN_DIR = Path(__file__).resolve().parents[3] / "tests" / "perf" / "golden"


@dataclass(frozen=True)
class GoldenCell:
    """One pinned reference configuration."""

    name: str
    app: str = "water"
    n_nodes: int = 9
    scale: float = 0.004
    seed: int = 2026
    protocol: str = "ecp"
    checkpoint_frequency_hz: float = 100.0
    loss_rate: float = 0.0

    def build(self, backend: str | None = None) -> Machine:
        """Construct the cell's machine, optionally pinning a kernel
        backend (``None`` follows the process default — the digests are
        backend-invariant by contract, so any value must verify)."""
        cfg = ArchConfig(n_nodes=self.n_nodes, seed=self.seed)
        if self.protocol == "ecp":
            cfg = cfg.with_ft(
                checkpoint_frequency_hz=self.checkpoint_frequency_hz
            )
        if self.loss_rate:
            cfg = cfg.with_transport(loss_rate=self.loss_rate)
        if self.app == "trace":
            # replayed-trace cell: record the water streams in memory
            # and replay them through TraceWorkload, pinning the trace
            # replay machinery (no vector generator exists for it, so
            # it also pins the scalar block-materialisation fallback)
            from repro.workloads.traces import TraceWorkload, record_trace

            source = make_workload(
                "water", n_procs=self.n_nodes, scale=self.scale,
                seed=self.seed,
            )
            wl = TraceWorkload(
                record_trace(source), shared_base=source.shared_base
            )
        else:
            wl = make_workload(
                self.app, n_procs=self.n_nodes, scale=self.scale,
                seed=self.seed,
            )
        return Machine(cfg, wl, protocol=self.protocol, backend=backend)

    @property
    def digest_path(self) -> Path:
        return GOLDEN_DIR / f"{self.name}.sha256"


#: The pinned cells.  The lossy cell matters doubly: the fabric
#: fast-forward must stay exact under retransmission traffic, and the
#: transport's timer bookkeeping (cancellable handles) must not perturb
#: the seeded loss draws.
GOLDEN_CELLS = (
    GoldenCell(name="water9_faultfree"),
    GoldenCell(name="water9_loss1pct", loss_rate=0.01),
    # datacenter traffic: a skewed KV stream pins the hot-key coherence
    # pattern (and the Zipf sampler's bit-exactness) the same way
    GoldenCell(name="zipf9_faultfree", app="zipf"),
    # the streaming scan pins the attraction-memory pressure path and
    # the scan generator's vector kernel
    GoldenCell(name="scan9_faultfree", app="scan"),
    # a replayed trace pins the trace machinery and the scalar
    # block-materialisation fallback (traces have no vector generator)
    GoldenCell(name="trace9_faultfree", app="trace"),
)


def reference_run(cell: GoldenCell) -> RunResult:
    """Build and run one golden cell."""
    return cell.build().run()


def result_digest(result: RunResult) -> str:
    """sha256 over the canonical JSON of the comparable result dict."""
    canonical = json.dumps(
        comparable_result_dict(result),
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - thin CLI
    """Regenerate or check the committed digests."""
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true",
        help="overwrite the committed digests with freshly computed ones",
    )
    parser.add_argument(
        "--backend", default=None,
        help="kernel backend to run the cells under (default: the "
        "process default; every backend must match the same digests)",
    )
    args = parser.parse_args(argv)
    status = 0
    GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
    for cell in GOLDEN_CELLS:
        digest = result_digest(cell.build(backend=args.backend).run())
        if args.write:
            cell.digest_path.write_text(digest + "\n", encoding="utf-8")
            print(f"{cell.name}: wrote {digest}")
        elif not cell.digest_path.exists():
            print(f"{cell.name}: no committed digest (run with --write)")
            status = 1
        else:
            committed = cell.digest_path.read_text(encoding="utf-8").strip()
            ok = committed == digest
            print(f"{cell.name}: {'OK' if ok else 'MISMATCH'} ({digest})")
            status = status or (0 if ok else 1)
    return status


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
