"""Protocol verification: runtime invariants, model checking, fuzzing.

The paper's fault-tolerance claim is a statement about the ECP state
machine; this package turns it into executable checks shared by three
harnesses of increasing reach:

- :mod:`repro.verify.invariants` — the global invariants as pure
  predicates over a machine (one definition of "correct" for everyone);
- :mod:`repro.verify.observer` — a runtime observer re-checking them
  after every protocol transition (``Machine.attach_verifier``);
- :mod:`repro.verify.model` — exhaustive small-scope model checking
  over the real protocol implementations;
- :mod:`repro.verify.fuzz` — seeded, replayable schedule fuzzing;
- :mod:`repro.verify.values` — a shadow data-value oracle for
  differential and rollback testing;
- :mod:`repro.verify.mutations` — seeded bugs that prove the checkers
  actually catch what they claim to.

CLI entry point: ``repro verify`` (see README).
"""

from repro.verify.invariants import (
    CheckContext,
    STRICT,
    Violation,
    check_machine,
    dump_state,
    format_violations,
)
from repro.verify.observer import InvariantObserver, InvariantViolationError
from repro.verify.model import (
    Counterexample,
    ModelConfig,
    ModelResult,
    check,
    format_event,
    replay,
)
from repro.verify.fuzz import FuzzReport, fuzz_batch, fuzz_events, fuzz_run
from repro.verify.mutations import MUTATIONS, Mutation
from repro.verify.values import VersionOracle

__all__ = [
    "CheckContext",
    "STRICT",
    "Violation",
    "check_machine",
    "dump_state",
    "format_violations",
    "InvariantObserver",
    "InvariantViolationError",
    "Counterexample",
    "ModelConfig",
    "ModelResult",
    "check",
    "format_event",
    "replay",
    "FuzzReport",
    "fuzz_batch",
    "fuzz_events",
    "fuzz_run",
    "MUTATIONS",
    "Mutation",
    "VersionOracle",
]
