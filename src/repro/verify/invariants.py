"""Global protocol invariants of the ECP, checked over a whole machine.

The paper's fault-tolerance argument (Sections 3-4) rests on a small
set of global properties that every protocol transition must preserve.
This module states them as pure predicates over a :class:`Machine`'s
state — AM contents, localization pointers, directory entries — and
returns structured :class:`Violation` records instead of asserting, so
the runtime observer, the model checker and the fuzzing harness can all
share one definition of "correct".

Checked invariants (codes cited by docs/PROTOCOL.md section 5):

``OWNER``
    At most one owner-capable copy per item — Exclusive, Master-Shared,
    Shared-CK1 or Pre-Commit1 (Section 4.1: only the ``*1`` member of a
    pair may grant exclusive rights).
``DUP``
    At most one copy of each CK/Pre-Commit state per item, and the two
    members of a pair on two *distinct* nodes (Section 4.1: an AM
    holding a non-replaceable copy refuses the pair's injection).
``CK-PAIR``
    A committed, unmodified item has exactly two Shared-CK copies; a
    singleton is legal only between a failure and the end of
    reconfiguration (Section 3.4).
``INV-PAIR``
    A modified item's old recovery point keeps exactly two Inv-CK
    copies until the commit that discards them (Section 3.3) — this is
    the restorability of the recovery point.
``CK-VS-OWNER``
    No Shared-CK copy coexists with a current owner copy: a write on a
    checkpointed item must degrade the whole pair to Inv-CK first
    (Fig. 1 / Section 4.1).
``CK-VS-INV``
    Outside a commit, an item never has both Shared-CK and Inv-CK
    copies (they would be two different recovery points).
``PRE-COMMIT``
    Pre-Commit states exist only between the create phase and the end
    of the commit phase of an establishment (Fig. 2).
``DIR-POINTER``/``DIR-PARTNER``/``DIR-SHARERS``
    The localization pointer names the live node holding the
    serving-capable copy; the directory entry's partner field names the
    actual ``*2`` holder; the sharing list matches the set of live
    nodes holding plain Shared copies (Section 2.2 / 4.1).
``AM-GROUP``
    The AM's per-state-group indexes agree with the frame states (an
    implementation invariant: the software analogue of the paper's
    "tree of modified lines" must never go stale).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.coherence.directory import DirectoryEntry
from repro.memory.states import ItemState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine import Machine

S = ItemState

_OWNER_CAPABLE = (S.EXCLUSIVE, S.MASTER_SHARED, S.SHARED_CK1, S.PRE_COMMIT1)
_CURRENT_OWNER = (S.EXCLUSIVE, S.MASTER_SHARED)
_PAIRS = (
    (S.SHARED_CK1, S.SHARED_CK2),
    (S.INV_CK1, S.INV_CK2),
    (S.PRE_COMMIT1, S.PRE_COMMIT2),
)


@dataclass(frozen=True)
class Violation:
    """One broken invariant, with enough context to debug it."""

    code: str
    item: int | None
    message: str

    def __str__(self) -> str:
        where = f"item {self.item}: " if self.item is not None else ""
        return f"[{self.code}] {where}{self.message}"


@dataclass(frozen=True)
class CheckContext:
    """Which relaxations apply to the current protocol phase.

    The strict set holds in the steady state; establishment, commit,
    recovery and the failure-detection window each legalise specific
    transients (see the observer's phase machine).
    """

    #: Pre-Commit copies are legal (create or commit phase running).
    allow_pre_commit: bool = False
    #: A Pre-Commit1 copy may still be waiting for its Pre-Commit2
    #: replica (mid-create) and vice versa during per-node commits.
    allow_incomplete_pairs: bool = False
    #: A recovery pair may be down to one copy (its partner died and
    #: reconfiguration has not re-replicated it yet), and directory
    #: state may reference the dead node.
    allow_singleton_ck: bool = False
    #: Skip pointer/entry agreement (mid-recovery, before the metadata
    #: rebuild has run).
    check_directory: bool = True
    #: Check invariants that relate copies on *different* nodes.  Off
    #: only while recovery scans run node by node: a scanned node's
    #: restored Shared-CK copies legally coexist with current copies on
    #: nodes whose scan has not run yet, so mid-scan only each AM's own
    #: consistency is meaningful.
    cross_node: bool = True


#: Strict steady-state context.
STRICT = CheckContext()


def _items_by_state(machine: "Machine") -> dict[int, dict[ItemState, list[int]]]:
    result: dict[int, dict[ItemState, list[int]]] = {}
    for node in machine.nodes:
        if not node.alive:
            continue
        for item, state in node.am.non_invalid_items():
            result.setdefault(item, {}).setdefault(state, []).append(node.node_id)
    return result


def check_machine(machine: "Machine", ctx: CheckContext = STRICT) -> list[Violation]:
    """Evaluate every invariant; returns the (possibly empty) breakage."""
    violations: list[Violation] = []
    by_item = _items_by_state(machine)
    if ctx.cross_node:
        _check_copies(machine, by_item, ctx, violations)
        if ctx.check_directory:
            _check_directory(machine, by_item, ctx, violations)
    _check_am_groups(machine, violations)
    return violations


# ----------------------------------------------------------------- copies


def _check_copies(
    machine: "Machine",
    by_item: dict[int, dict[ItemState, list[int]]],
    ctx: CheckContext,
    out: list[Violation],
) -> None:
    for item, states in sorted(by_item.items()):
        owners = [
            (st.name, n) for st in _OWNER_CAPABLE for n in states.get(st, ())
        ]
        if len(owners) > 1:
            out.append(
                Violation(
                    "OWNER",
                    item,
                    f"multiple owner-capable copies: {owners}",
                )
            )
        for one, two in _PAIRS:
            h1 = states.get(one, [])
            h2 = states.get(two, [])
            if len(h1) > 1 or len(h2) > 1:
                out.append(
                    Violation(
                        "DUP",
                        item,
                        f"duplicated {one.name}/{two.name} copies at "
                        f"{h1} / {h2}",
                    )
                )
            if h1 and h2 and set(h1) & set(h2):
                out.append(
                    Violation(
                        "DUP",
                        item,
                        f"{one.name} and {two.name} co-located on node "
                        f"{sorted(set(h1) & set(h2))[0]}",
                    )
                )
        has_pc = bool(states.get(S.PRE_COMMIT1) or states.get(S.PRE_COMMIT2))
        if has_pc and not ctx.allow_pre_commit:
            out.append(
                Violation(
                    "PRE-COMMIT",
                    item,
                    "Pre-Commit copies exist outside an establishment "
                    f"(holders: {states.get(S.PRE_COMMIT1, [])} / "
                    f"{states.get(S.PRE_COMMIT2, [])})",
                )
            )
        if not ctx.allow_incomplete_pairs:
            _check_pair_completeness(item, states, ctx, out)
        ck = states.get(S.SHARED_CK1, []) + states.get(S.SHARED_CK2, [])
        if ck and any(states.get(st) for st in _CURRENT_OWNER):
            out.append(
                Violation(
                    "CK-VS-OWNER",
                    item,
                    "Shared-CK copies coexist with a current owner "
                    f"(CK at {ck}, owner "
                    f"{[(st.name, states[st]) for st in _CURRENT_OWNER if states.get(st)]})",
                )
            )
        inv = states.get(S.INV_CK1, []) + states.get(S.INV_CK2, [])
        if ck and inv and not ctx.allow_incomplete_pairs:
            out.append(
                Violation(
                    "CK-VS-INV",
                    item,
                    f"both Shared-CK ({ck}) and Inv-CK ({inv}) copies exist "
                    "outside a commit",
                )
            )


def _check_pair_completeness(
    item: int,
    states: dict[ItemState, list[int]],
    ctx: CheckContext,
    out: list[Violation],
) -> None:
    for one, two in _PAIRS:
        h1 = states.get(one, [])
        h2 = states.get(two, [])
        if bool(h1) == bool(h2):
            continue
        if ctx.allow_singleton_ck:
            # a pair may be down to one copy: its partner died with its
            # node, and reconfiguration has not re-replicated it yet
            continue
        present, absent = (one, two) if h1 else (two, one)
        out.append(
            Violation(
                "CK-PAIR" if one is S.SHARED_CK1 else
                "INV-PAIR" if one is S.INV_CK1 else "PC-PAIR",
                item,
                f"{present.name} copy at {h1 or h2} has no {absent.name} "
                "partner copy",
            )
        )


# ----------------------------------------------------------------- directory


def _check_directory(
    machine: "Machine",
    by_item: dict[int, dict[ItemState, list[int]]],
    ctx: CheckContext,
    out: list[Violation],
) -> None:
    directory = machine.directory
    nodes = machine.nodes
    for item, states in sorted(by_item.items()):
        serving_holders = [
            n for st in _OWNER_CAPABLE for n in states.get(st, ())
        ]
        pointer = directory.serving_node(item)
        home = directory.home_of(item)
        if ctx.allow_singleton_ck and not nodes[home].alive:
            # the pointer partition died with its host; lookups raise
            # NodeUnavailable until the recovery rebuild re-homes it
            continue
        if serving_holders:
            holder = serving_holders[0]
            if pointer != holder:
                out.append(
                    Violation(
                        "DIR-POINTER",
                        item,
                        f"pointer names node {pointer} but the serving copy "
                        f"lives on node {holder}",
                    )
                )
                continue
            # entries are created lazily: a missing entry is an empty one
            entry = directory.peek_entry(holder, item) or DirectoryEntry()
            _check_entry(machine, item, holder, states, entry, ctx, out)
        elif pointer is not None and nodes[pointer].alive:
            # a live pointer must reference an actual serving copy;
            # pointers to *dead* nodes are the detection window's
            # timeout-pending requests (legalised by allow_singleton_ck)
            state = nodes[pointer].am.state(item)
            if state not in _OWNER_CAPABLE:
                out.append(
                    Violation(
                        "DIR-POINTER",
                        item,
                        f"pointer names live node {pointer} whose copy is "
                        f"{state.name}, not serving-capable",
                    )
                )
        elif pointer is not None and not ctx.allow_singleton_ck:
            out.append(
                Violation(
                    "DIR-POINTER",
                    item,
                    f"pointer names dead node {pointer} outside a "
                    "failure-detection window",
                )
            )


def _check_entry(
    machine: "Machine",
    item: int,
    holder: int,
    states: dict[ItemState, list[int]],
    entry,
    ctx: CheckContext,
    out: list[Violation],
) -> None:
    nodes = machine.nodes
    holder_state = nodes[holder].am.state(item)
    expected_partner_state = {
        S.SHARED_CK1: S.SHARED_CK2,
        S.PRE_COMMIT1: S.PRE_COMMIT2,
    }.get(holder_state)
    legal_partner_states: set[ItemState] = (
        {expected_partner_state} if expected_partner_state else set()
    )
    if expected_partner_state is not None and ctx.allow_pre_commit:
        # commits run node by node: either member of the pair may have
        # committed Pre-Commit -> Shared-CK before the other
        legal_partner_states |= {S.SHARED_CK2, S.PRE_COMMIT2}
    partner = entry.partner
    if partner is not None:
        if not nodes[partner].alive:
            if not ctx.allow_singleton_ck:
                out.append(
                    Violation(
                        "DIR-PARTNER",
                        item,
                        f"partner field names dead node {partner}",
                    )
                )
        elif expected_partner_state is None:
            out.append(
                Violation(
                    "DIR-PARTNER",
                    item,
                    f"{holder_state.name} serving copy carries a partner "
                    f"({partner}) but has no paired state",
                )
            )
        elif nodes[partner].am.state(item) not in legal_partner_states:
            out.append(
                Violation(
                    "DIR-PARTNER",
                    item,
                    f"partner node {partner} holds "
                    f"{nodes[partner].am.state(item).name}, expected "
                    f"{expected_partner_state.name}",
                )
            )
    elif expected_partner_state is not None and not (
        ctx.allow_singleton_ck or ctx.allow_incomplete_pairs
    ):
        out.append(
            Violation(
                "DIR-PARTNER",
                item,
                f"{holder_state.name} serving copy has no partner recorded",
            )
        )
    actual_sharers = set(states.get(S.SHARED, ()))
    listed_live = {n for n in entry.sharers if nodes[n].alive}
    if listed_live != actual_sharers:
        out.append(
            Violation(
                "DIR-SHARERS",
                item,
                f"sharing list {sorted(listed_live)} != Shared holders "
                f"{sorted(actual_sharers)}",
            )
        )


# ----------------------------------------------------------------- AM indexes


def _check_am_groups(machine: "Machine", out: list[Violation]) -> None:
    from repro.memory.attraction_memory import _GROUP_OF

    for node in machine.nodes:
        if not node.alive:
            continue
        actual: dict[str, set[int]] = {
            "shared": set(), "owned": set(), "shared_ck": set(),
            "inv_ck": set(), "pre_commit": set(),
        }
        for item, state in node.am.non_invalid_items():
            group = _GROUP_OF[state]
            if group is not None:
                actual[group].add(item)
        for group, items in actual.items():
            indexed = node.am.items_in_group(group)
            if indexed != items:
                out.append(
                    Violation(
                        "AM-GROUP",
                        None,
                        f"node {node.node_id} group {group!r} index "
                        f"{sorted(indexed)} != frame states {sorted(items)}",
                    )
                )


# ----------------------------------------------------------------- reporting


def dump_state(machine: "Machine") -> str:
    """Human-readable global state for violation reports."""
    lines = []
    alive = [n.node_id for n in machine.nodes if n.alive]
    dead = [n.node_id for n in machine.nodes if not n.alive]
    lines.append(f"live nodes: {alive}" + (f"  dead: {dead}" if dead else ""))
    for item, states in sorted(_items_by_state(machine).items()):
        parts = [
            f"{st.name}@{holders}" for st, holders in sorted(
                states.items(), key=lambda kv: kv[0].value
            )
        ]
        pointer = machine.directory.serving_node(item)
        entry = None
        if pointer is not None:
            entry = machine.directory.peek_entry(pointer, item)
        extra = f" ptr={pointer}"
        if entry is not None:
            extra += f" sharers={sorted(entry.sharers)} partner={entry.partner}"
        lines.append(f"  item {item}: {', '.join(parts)}{extra}")
    return "\n".join(lines)


def format_violations(violations: Iterable[Violation]) -> str:
    return "\n".join(str(v) for v in violations)
