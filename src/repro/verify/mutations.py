"""Seeded protocol bugs for validating the verification layer itself.

A checker that has never caught a bug is untrusted.  Each mutation here
monkeypatches one protocol method on a machine instance with a
plausibly-wrong variant — the kind of defect a refactor could really
introduce — and names the invariant code the model checker / fuzzer
must report when it finds the resulting violation.  ``repro verify
--mutate NAME`` and tests/verify/test_model_checker.py drive these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from repro.memory.states import ItemState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine import Machine

S = ItemState


@dataclass(frozen=True)
class Mutation:
    name: str
    description: str
    #: Invariant codes acceptable as the first detection (a seeded bug
    #: often trips a sibling invariant before the headline one).
    expected_codes: tuple[str, ...]
    apply: Callable[["Machine"], None]
    #: Recovery strategy whose code path the mutation seeds (the model
    #: must be checked with ``ModelConfig(strategy=...)`` to reach it).
    strategy: str = "ecp"
    #: True when only failure events reach the mutated path
    #: (``ModelConfig(failures=True)``).
    requires_failures: bool = False
    #: True when only membership events (joins, leadership handoffs)
    #: reach the mutated path (``ModelConfig(membership=True)``).
    requires_membership: bool = False


def _mut_commit_keeps_inv_ck(machine: "Machine") -> None:
    """Commit promotes the Pre-Commit pair but forgets to discard the
    old recovery point: two recovery points coexist (CK-VS-INV)."""
    protocol = machine.protocol

    def commit_node(node_id):
        node = protocol.nodes[node_id]
        promoted = 0
        for item in node.am.items_in_group("pre_commit"):
            state = node.am.state(item)
            node.am.set_state(
                item,
                S.SHARED_CK1 if state is S.PRE_COMMIT1 else S.SHARED_CK2,
            )
            promoted += 1
        return promoted, 0  # bug: Inv-CK copies never discarded

    protocol.commit_node = commit_node


def _mut_commit_promotes_both_primary(machine: "Machine") -> None:
    """Commit turns *both* pair members into Shared-CK1: duplicate
    primaries / two owner-capable copies (DUP, OWNER)."""
    protocol = machine.protocol

    def commit_node(node_id):
        node = protocol.nodes[node_id]
        promoted = 0
        for item in node.am.items_in_group("pre_commit"):
            node.am.set_state(item, S.SHARED_CK1)  # bug: CK2 becomes CK1
            promoted += 1
        discarded = 0
        for item in node.am.items_in_group("inv_ck"):
            node.am.set_state(item, S.INVALID)
            discarded += 1
        return promoted, discarded

    protocol.commit_node = commit_node


def _mut_sharer_drop_lost(machine: "Machine") -> None:
    """The sharing-list prune message of a silent replacement is lost:
    the directory keeps naming a node that dropped its copy
    (DIR-SHARERS)."""
    machine.protocol.on_shared_copy_dropped = lambda node_id, item, now: None


def _mut_write_skips_inv_ck_degrade(machine: "Machine") -> None:
    """A write miss on a node holding a Shared-CK copy takes ownership
    without degrading the recovery pair to Inv-CK first: a current
    owner coexists with Shared-CK copies (CK-VS-OWNER)."""
    protocol = machine.protocol
    inner = protocol._pre_miss_write

    def _pre_miss_write(node_id, item, now):
        state = protocol.nodes[node_id].am.state(item)
        if state in (S.SHARED_CK1, S.SHARED_CK2):
            return now  # bug: pair left in Shared-CK
        return inner(node_id, item, now)

    protocol._pre_miss_write = _pre_miss_write


def _mut_lost_precommit_mark(machine: "Machine") -> None:
    """The create phase's PRECOMMIT_MARK is dropped and never retried
    (a fire-and-forget transport): the owner commits a recovery 'pair'
    whose second member was never promoted (CK-PAIR, DIR-PARTNER)."""
    from repro.network.message import MessageKind
    from repro.network.topology import Subnet

    protocol = machine.protocol

    def mark_precommit_replica(node_id, item, target, now):
        t = protocol.fabric.control(
            node_id, target, Subnet.REQUEST, now, MessageKind.PRECOMMIT_MARK, item
        )
        entry = protocol.directory.entry(node_id, item)
        entry.sharers.discard(target)
        entry.partner = target
        return t  # bug: the mark was lost; no retry, no promotion

    protocol.mark_precommit_replica = mark_precommit_replica


def _mut_commit_skips_one_node(machine: "Machine") -> None:
    """Node 1's COMMIT is lost and never retried: a recovery point
    committed on every node but one (PRE-COMMIT and pair breakage)."""
    protocol = machine.protocol
    inner = protocol.commit_node

    def commit_node(node_id):
        if node_id == 1:
            return 0, 0  # bug: the commit never reached node 1
        return inner(node_id)

    protocol.commit_node = commit_node


def _mut_dup_inject_reinstalls(machine: "Machine") -> None:
    """The INJECT_DATA handler lost its duplicate guard: a
    retransmitted injection re-runs the install path, which for a
    Shared copy prunes the sharing list the node is still on
    (EXACTLY-ONCE; needs ``ModelConfig(duplicates=True)``)."""
    protocol = machine.protocol
    injector = protocol.injector
    inner = injector._install

    def _install(node_id, item, state, now):
        node = protocol.nodes[node_id]
        if node.am.has_page(node.am.page_of(item)) and node.am.state(item) is state:
            # bug: no already-installed check — the duplicate is treated
            # as a stale replaceable copy being overwritten
            if state is S.SHARED:
                protocol.on_shared_copy_dropped(node_id, item, now)
            node.am.set_state(item, state)
            return
        inner(node_id, item, state, now)

    injector._install = _install


def _mut_pooled_restore_unpublished(machine: "Machine") -> None:
    """The pooled restore installs each item's copy but loses the
    pointer republish: serving copies exist that no localization
    pointer names (DIR-POINTER; pooled strategy, failure path)."""
    machine.recovery._publish = lambda item, target: None


def _mut_recompute_restore_shared(machine: "Machine") -> None:
    """The recompute restore re-materializes items as plain Shared
    instead of Exclusive: the republished pointer names a copy that
    cannot serve ownership (DIR-POINTER; recompute strategy, failure
    path)."""
    machine.recovery.restore_state = S.SHARED


def _mut_join_wipes_pointer_partition(machine: "Machine") -> None:
    """The joining node initializes its pointer partition to empty
    instead of reclaiming the entries accumulated while it was
    unjoined: every copy of a joiner-homed item loses its localization
    pointer (DIR-POINTER; membership path)."""
    recovery = machine.recovery
    inner = recovery.join_node

    def join_node(node_id):
        yield from inner(node_id)
        # bug: "fresh node, fresh partition" — the home's directory
        # entries were live the whole time
        machine.directory._pointers[node_id].clear()

    recovery.join_node = join_node


def _mut_handoff_claims_serving_copies(machine: "Machine") -> None:
    """The incoming checkpoint leader 're-registers' its copies on
    handoff, repointing localization pointers at its plain Shared
    replicas: the pointer names a copy that cannot serve ownership
    (DIR-POINTER; membership path)."""
    recovery = machine.recovery
    inner = recovery.handoff_cycles

    def handoff_cycles(kind):
        # the model hands leadership to the next node in issue order
        new_leader = next(
            (n.node_id for n in machine.nodes[1:] if n.alive), None
        )
        if new_leader is not None:
            node = machine.nodes[new_leader]
            for item, state in list(node.am.non_invalid_items()):
                if state is S.SHARED:
                    machine.directory.set_serving_node(item, new_leader)
        return inner(kind)

    recovery.handoff_cycles = handoff_cycles


def _mut_home_timeout_ignored(machine: "Machine") -> None:
    """Regression guard for a real bug: a cold miss on an item whose
    home node died (pointer partition wiped, not yet rehosted) used to
    mint a second Exclusive owner instead of timing out (OWNER)."""
    machine.protocol._check_home_reachable = lambda item: None


MUTATIONS: dict[str, Mutation] = {
    m.name: m
    for m in (
        Mutation(
            "commit-keeps-inv-ck",
            "commit forgets to discard the old recovery point",
            ("CK-VS-INV",),
            _mut_commit_keeps_inv_ck,
        ),
        Mutation(
            "commit-promotes-both-primary",
            "commit promotes Pre-Commit2 to Shared-CK1",
            ("DUP", "OWNER"),
            _mut_commit_promotes_both_primary,
        ),
        Mutation(
            "sharer-drop-lost",
            "replacement never prunes the sharing list",
            ("DIR-SHARERS",),
            _mut_sharer_drop_lost,
        ),
        Mutation(
            "write-skips-inv-ck-degrade",
            "write takes ownership without degrading Shared-CK to Inv-CK",
            ("CK-VS-OWNER", "INV-PAIR"),
            _mut_write_skips_inv_ck_degrade,
        ),
        Mutation(
            "lost-precommit-mark",
            "PRECOMMIT_MARK dropped without retry: pair never promoted",
            ("CK-PAIR", "DIR-PARTNER"),
            _mut_lost_precommit_mark,
        ),
        Mutation(
            "commit-skips-one-node",
            "COMMIT lost to one node without retry: partial recovery point",
            ("PRE-COMMIT", "CK-PAIR", "CK-VS-INV", "DUP"),
            _mut_commit_skips_one_node,
        ),
        Mutation(
            "dup-inject-reinstalls",
            "duplicate INJECT_DATA re-runs the install path",
            ("EXACTLY-ONCE", "DIR-SHARERS"),
            _mut_dup_inject_reinstalls,
        ),
        Mutation(
            "home-timeout-ignored",
            "cold miss trusts a wiped pointer partition (dead home node)",
            ("OWNER", "DUP", "CK-VS-OWNER"),
            _mut_home_timeout_ignored,
        ),
        Mutation(
            "join-wipes-pointer-partition",
            "join clears its pointer partition instead of reclaiming it",
            ("DIR-POINTER",),
            _mut_join_wipes_pointer_partition,
            requires_membership=True,
        ),
        Mutation(
            "handoff-claims-serving-copies",
            "incoming leader repoints items at its plain Shared copies",
            ("DIR-POINTER",),
            _mut_handoff_claims_serving_copies,
            requires_membership=True,
        ),
        Mutation(
            "pooled-restore-unpublished",
            "pool restore never republishes the localization pointer",
            ("DIR-POINTER",),
            _mut_pooled_restore_unpublished,
            strategy="pooled",
            requires_failures=True,
        ),
        Mutation(
            "recompute-restore-shared",
            "recompute re-materializes items as Shared, not Exclusive",
            ("DIR-POINTER",),
            _mut_recompute_restore_shared,
            strategy="recompute",
            requires_failures=True,
        ),
    )
}
