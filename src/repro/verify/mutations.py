"""Seeded protocol bugs for validating the verification layer itself.

A checker that has never caught a bug is untrusted.  Each mutation here
monkeypatches one protocol method on a machine instance with a
plausibly-wrong variant — the kind of defect a refactor could really
introduce — and names the invariant code the model checker / fuzzer
must report when it finds the resulting violation.  ``repro verify
--mutate NAME`` and tests/verify/test_model_checker.py drive these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, TYPE_CHECKING

from repro.memory.states import ItemState

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine import Machine

S = ItemState


@dataclass(frozen=True)
class Mutation:
    name: str
    description: str
    #: Invariant codes acceptable as the first detection (a seeded bug
    #: often trips a sibling invariant before the headline one).
    expected_codes: tuple[str, ...]
    apply: Callable[["Machine"], None]


def _mut_commit_keeps_inv_ck(machine: "Machine") -> None:
    """Commit promotes the Pre-Commit pair but forgets to discard the
    old recovery point: two recovery points coexist (CK-VS-INV)."""
    protocol = machine.protocol

    def commit_node(node_id):
        node = protocol.nodes[node_id]
        promoted = 0
        for item in node.am.items_in_group("pre_commit"):
            state = node.am.state(item)
            node.am.set_state(
                item,
                S.SHARED_CK1 if state is S.PRE_COMMIT1 else S.SHARED_CK2,
            )
            promoted += 1
        return promoted, 0  # bug: Inv-CK copies never discarded

    protocol.commit_node = commit_node


def _mut_commit_promotes_both_primary(machine: "Machine") -> None:
    """Commit turns *both* pair members into Shared-CK1: duplicate
    primaries / two owner-capable copies (DUP, OWNER)."""
    protocol = machine.protocol

    def commit_node(node_id):
        node = protocol.nodes[node_id]
        promoted = 0
        for item in node.am.items_in_group("pre_commit"):
            node.am.set_state(item, S.SHARED_CK1)  # bug: CK2 becomes CK1
            promoted += 1
        discarded = 0
        for item in node.am.items_in_group("inv_ck"):
            node.am.set_state(item, S.INVALID)
            discarded += 1
        return promoted, discarded

    protocol.commit_node = commit_node


def _mut_sharer_drop_lost(machine: "Machine") -> None:
    """The sharing-list prune message of a silent replacement is lost:
    the directory keeps naming a node that dropped its copy
    (DIR-SHARERS)."""
    machine.protocol.on_shared_copy_dropped = lambda node_id, item, now: None


def _mut_write_skips_inv_ck_degrade(machine: "Machine") -> None:
    """A write miss on a node holding a Shared-CK copy takes ownership
    without degrading the recovery pair to Inv-CK first: a current
    owner coexists with Shared-CK copies (CK-VS-OWNER)."""
    protocol = machine.protocol
    inner = protocol._pre_miss_write

    def _pre_miss_write(node_id, item, now):
        state = protocol.nodes[node_id].am.state(item)
        if state in (S.SHARED_CK1, S.SHARED_CK2):
            return now  # bug: pair left in Shared-CK
        return inner(node_id, item, now)

    protocol._pre_miss_write = _pre_miss_write


def _mut_home_timeout_ignored(machine: "Machine") -> None:
    """Regression guard for a real bug: a cold miss on an item whose
    home node died (pointer partition wiped, not yet rehosted) used to
    mint a second Exclusive owner instead of timing out (OWNER)."""
    machine.protocol._check_home_reachable = lambda item: None


MUTATIONS: dict[str, Mutation] = {
    m.name: m
    for m in (
        Mutation(
            "commit-keeps-inv-ck",
            "commit forgets to discard the old recovery point",
            ("CK-VS-INV",),
            _mut_commit_keeps_inv_ck,
        ),
        Mutation(
            "commit-promotes-both-primary",
            "commit promotes Pre-Commit2 to Shared-CK1",
            ("DUP", "OWNER"),
            _mut_commit_promotes_both_primary,
        ),
        Mutation(
            "sharer-drop-lost",
            "replacement never prunes the sharing list",
            ("DIR-SHARERS",),
            _mut_sharer_drop_lost,
        ),
        Mutation(
            "write-skips-inv-ck-degrade",
            "write takes ownership without degrading Shared-CK to Inv-CK",
            ("CK-VS-OWNER", "INV-PAIR"),
            _mut_write_skips_inv_ck_degrade,
        ),
        Mutation(
            "home-timeout-ignored",
            "cold miss trusts a wiped pointer partition (dead home node)",
            ("OWNER", "DUP", "CK-VS-OWNER"),
            _mut_home_timeout_ignored,
        ),
    )
}
