"""Small-scope explicit-state model checking of the coherence protocols.

Exhaustively explores every interleaving of protocol events — reads,
writes, replacements, recovery-point establishments, node failures and
recoveries — for a handful of acting nodes and items, over the *real*
:class:`~repro.coherence.standard.StandardProtocol` or
:class:`~repro.coherence.ecp.ExtendedProtocol` implementation (no
abstraction gap: the checked code is the simulated code).

The search is a breadth-first walk over canonically-hashed global
states.  Because a :class:`~repro.machine.Machine` is not snapshotable,
expansion is *replay-based*: each explored state is identified by the
event trace that reaches it, and successors are computed by replaying
that trace on a fresh machine and applying one more event — the same
determinism that makes counterexample traces replayable (the protocol
consumes no randomness, and timing never influences which transition a
state permits, so merging states that differ only in clock or stats is
sound).

Event granularity mirrors the machine's coordination rules (Fig. 2 /
Section 3.4): processors are parked at the establishment barriers, so an
establishment is atomic with respect to reads and writes and only
*failures* can interleave with it — which the ``ckpt_fail_create`` /
``ckpt_fail_commit`` events enumerate step by step.

Scope notes: the ECP needs :data:`MIN_LIVE_NODES_ECP` live memories to
host recovery pairs, so "2 acting nodes" run on a 4-node machine (6 when
failure events are enabled); the fault model is the paper's single
permanent failure.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.checkpoint.establish import EstablishmentFailed
from repro.checkpoint.recovery import UnrecoverableFailure
from repro.coherence.injection import InjectionFailed
from repro.coherence.standard import NodeUnavailable
from repro.config import AMConfig, ArchConfig, CacheConfig
from repro.machine import Machine
from repro.memory.attraction_memory import CapacityError
from repro.memory.states import ItemState
from repro.verify.invariants import (
    CheckContext,
    STRICT,
    Violation,
    check_machine,
    dump_state,
    format_violations,
)
from repro.workloads.traces import TraceWorkload

S = ItemState

#: An event is a plain tuple: ("r", node, item), ("w", node, item),
#: ("evict", node, item), ("ckpt",), ("ckpt_abort", k),
#: ("ckpt_fail_create", f, k, "revert"|"leave"),
#: ("ckpt_fail_commit", f, k), ("fail", node), ("recover",),
#: plus the transport events ("dup_invalidate", node, item),
#: ("dup_partner_invalidate", node, item), ("dup_inject", node, item)
#: (a retransmitted message delivered a second time — the idempotent
#: handler must not change state) and ("ckpt_lossy", spec) (an
#: establishment under a scripted drop/dup schedule — the reliable
#: transport must mask it, i.e. reach the loss-free end state), plus
#: the elastic-membership events ("join",) (the unjoined slot joins,
#: atomically), ("ckpt_join_create", k) / ("ckpt_join_commit", k) (the
#: join lands inside an establishment, after k create/commit phases),
#: ("handoff",) (a deliberate leadership handoff between episodes) and
#: ("ckpt_handoff_sync",) (leadership handed off at the sync point, so
#: the episode is issued in the incoming leader's order).
Event = tuple

#: Scripted transport fates for ``ckpt_lossy``: each character is one
#: packet fate ('d' dropped, 'u' duplicated), consumed in order by the
#: transport's link-fault model during the establishment.
LOSSY_SCHEDULES = ("d", "dd", "ddd", "u", "du")


class DuplicateEffectError(RuntimeError):
    """A duplicate delivery changed protocol state (the exactly-once
    effect guarantee is broken)."""

#: Relaxed context between a failure and the end of its recovery: pairs
#: may be singletons, metadata may reference the dead node, and an
#: abandoned establishment may have left Pre-Commit copies for the scan.
_FAILED_CTX = CheckContext(
    allow_pre_commit=True,
    allow_incomplete_pairs=True,
    allow_singleton_ck=True,
)

_EVICTABLE = (
    S.SHARED,
    S.EXCLUSIVE,
    S.MASTER_SHARED,
    S.SHARED_CK1,
    S.SHARED_CK2,
    S.INV_CK1,
    S.INV_CK2,
)


@dataclass(frozen=True)
class ModelConfig:
    """Scope of one exhaustive exploration."""

    protocol: str = "ecp"
    #: Recovery backend under check (repro.recovery); every strategy
    #: runs through the same events and invariants.
    strategy: str = "ecp"
    #: Nodes issuing reads/writes (events address only these).
    acting_nodes: int = 2
    n_items: int = 1
    #: None explores to closure (every reachable state).
    max_depth: int | None = None
    max_states: int = 50_000
    checkpoints: bool = True
    evictions: bool = True
    #: Enumerate single permanent node failures (incl. mid-establishment).
    failures: bool = False
    #: Enumerate duplicate deliveries of already-applied messages (the
    #: transport's exactly-once effect property).
    duplicates: bool = False
    #: Enumerate establishments under scripted drop/dup schedules (the
    #: transport must mask them: same end state as a loss-free run).
    lossy: bool = False
    #: Enumerate elastic-membership events: the last node slot starts
    #: unjoined and may join at any point — including between the
    #: create/commit phases of an establishment — and checkpoint
    #: leadership may be handed off at the sync point.
    membership: bool = False
    seed: int = 0

    def __post_init__(self):
        if self.protocol != "ecp" and (self.checkpoints or self.failures):
            raise ValueError(
                "checkpoint/failure events need the ECP; pass "
                "checkpoints=False, failures=False for the standard protocol"
            )
        if self.protocol != "ecp" and self.strategy != "ecp":
            raise ValueError("recovery strategies ride on the ECP machine")
        if self.lossy and not self.checkpoints:
            raise ValueError("lossy establishment events need checkpoints=True")
        if self.membership and self.protocol != "ecp":
            raise ValueError("membership events ride on the ECP machine")

    @property
    def machine_nodes(self) -> int:
        # the ECP needs MIN_LIVE_NODES_ECP(=4) live AMs to place a
        # recovery pair away from the writer; with failures one node
        # may die, and a spare gives injections room to land.  With
        # membership the last slot starts unjoined, so everything needs
        # one more node — sized to a valid (non-prime) mesh
        if self.membership:
            return max(8 if self.failures else 6, self.acting_nodes + 2)
        if self.failures:
            return max(6, self.acting_nodes + 1)
        return max(4, self.acting_nodes)

    @property
    def joiner(self) -> int:
        """Membership mode: the unjoined slot (always the last node)."""
        return self.machine_nodes - 1

    def model_items(self) -> tuple[int, ...]:
        """Items the acting nodes address.  Membership mode rehomes the
        last item onto the joiner, so the unjoined pointer partition —
        and its reclamation at join — is on the explored surface
        without enlarging the item count."""
        items = tuple(range(self.n_items))
        if self.membership:
            from repro.config import AMConfig

            # same AM geometry as build_machine, so the home really is
            # the joiner: home_of = (item // items_per_page) % n_nodes
            joiner_item = (
                AMConfig(size_bytes=512 * 1024).items_per_page * self.joiner
            )
            items = items[:-1] + (joiner_item,)
        return items


@dataclass
class Counterexample:
    """A trace from the initial state to an invariant violation."""

    trace: tuple[Event, ...]
    violations: list[Violation]
    state_dump: str

    def format(self) -> str:
        lines = ["counterexample trace:"]
        for i, event in enumerate(self.trace, 1):
            lines.append(f"  step {i}: {format_event(event)}")
        lines.append("violated invariants:")
        lines.extend(f"  {v}" for v in self.violations)
        lines.append("global state:")
        lines.extend(f"  {line}" for line in self.state_dump.splitlines())
        return "\n".join(lines)


@dataclass
class ModelResult:
    """Outcome of one exploration."""

    config: ModelConfig
    states: int = 0
    transitions: int = 0
    max_depth_reached: int = 0
    #: True when the reachable state space closed within the bounds.
    complete: bool = False
    counterexample: Counterexample | None = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    def summary(self) -> str:
        verdict = "OK" if self.ok else "VIOLATION"
        backend = (
            "" if self.config.strategy == "ecp"
            else f"/{self.config.strategy}"
        )
        scope = (
            f"{self.config.protocol}{backend} {self.config.acting_nodes} "
            f"acting nodes x {self.config.n_items} items"
        )
        closure = "closed" if self.complete else "bounded"
        return (
            f"model check [{scope}]: {verdict} — {self.states} states, "
            f"{self.transitions} transitions, depth {self.max_depth_reached} "
            f"({closure})"
        )


def format_event(event: Event) -> str:
    kind = event[0]
    if kind in ("r", "w"):
        op = "read" if kind == "r" else "write"
        return f"{op}(node={event[1]}, item={event[2]})"
    if kind == "evict":
        return f"evict(node={event[1]}, item={event[2]})"
    if kind == "ckpt":
        return "establish recovery point (create+commit, all nodes)"
    if kind == "ckpt_abort":
        return f"establishment aborted after {event[1]} create phase(s)"
    if kind == "ckpt_fail_create":
        mode = "detected early (Pre-Commit left for scan)" if event[3] == "leave" \
            else "detected late (Pre-Commit reverted)"
        return (
            f"node {event[1]} fails after {event[2]} create phase(s), {mode}"
        )
    if kind == "ckpt_fail_commit":
        return f"node {event[1]} fails after {event[2]} commit phase(s)"
    if kind == "fail":
        return f"node {event[1]} fails (permanent)"
    if kind == "recover":
        return "recovery (scans + rebuild + reconfiguration + rollback)"
    if kind == "dup_invalidate":
        return f"duplicate INVALIDATE delivered (node={event[1]}, item={event[2]})"
    if kind == "dup_partner_invalidate":
        return (
            f"duplicate partner INVALIDATE delivered "
            f"(node={event[1]}, item={event[2]})"
        )
    if kind == "dup_inject":
        return f"duplicate INJECT_DATA delivered (node={event[1]}, item={event[2]})"
    if kind == "ckpt_lossy":
        return (
            f"establish recovery point under drop/dup schedule {event[1]!r}"
        )
    if kind == "join":
        return "unjoined slot joins (catch-up + pointer reclamation)"
    if kind == "ckpt_join_create":
        return f"join lands mid-establishment, after {event[1]} create phase(s)"
    if kind == "ckpt_join_commit":
        return f"join lands mid-establishment, after {event[1]} commit phase(s)"
    if kind == "handoff":
        return "checkpoint leadership handed off between episodes"
    if kind == "ckpt_handoff_sync":
        return (
            "leadership handed off at the sync point; establishment issued "
            "in the incoming leader's order"
        )
    return repr(event)


# --------------------------------------------------------------- machine


def build_machine(mcfg: ModelConfig, mutate: Callable[[Machine], None] | None = None) -> Machine:
    """A fresh bare machine for one replay (no processes started)."""
    cfg = ArchConfig(
        n_nodes=mcfg.machine_nodes,
        am=AMConfig(size_bytes=512 * 1024),
        cache=CacheConfig(size_bytes=32 * 1024),
        seed=mcfg.seed,
    )
    workload = TraceWorkload.from_ops([[("r", 0)]])
    machine = Machine(
        cfg,
        workload,
        protocol=mcfg.protocol,
        checkpointing=False,
        recovery_strategy=mcfg.strategy,
        initial_members=mcfg.machine_nodes - 1 if mcfg.membership else None,
    )
    if mutate is not None:
        mutate(machine)
    return machine


def canonical_state(machine: Machine) -> tuple:
    """Hashable image of the protocol-visible global state.

    Clocks, statistics, caches (invalidated after every event) and
    contention bookkeeping are excluded: they never influence which
    transition a state permits, so states differing only there merge.
    """
    nodes = tuple(
        (
            node.alive,
            node.joined,
            node.pointers_rehosted,
            tuple(sorted((item, state.value) for item, state in node.am.non_invalid_items())),
            tuple(sorted(node.am.pages())),
        )
        for node in machine.nodes
    )
    # strategy-private recovery state (e.g. pool content) distinguishes
    # states the AMs alone would conflate; the ECP's is always ()
    return nodes, machine.directory.snapshot(), machine.recovery.snapshot()


def _pending_failure(machine: Machine) -> bool:
    return any(not n.alive and not n.pointers_rehosted for n in machine.nodes)


def _context(machine: Machine) -> CheckContext:
    return _FAILED_CTX if _pending_failure(machine) else STRICT


def _addr(machine: Machine, item: int) -> int:
    return item * machine.cfg.item_bytes


def _drain(machine: Machine, gen: Iterable[int]) -> None:
    for delay in gen:
        machine.engine.run(until=machine.engine.now + int(delay))


# --------------------------------------------------------------- events


def enabled_events(machine: Machine, mcfg: ModelConfig) -> list[Event]:
    events: list[Event] = []
    ever_failed = any(not n.alive for n in machine.nodes)
    pending = _pending_failure(machine)
    live = [n.node_id for n in machine.nodes if n.alive]

    if pending and any(
        machine.nodes[n].am.count_in_group("pre_commit") for n in live
    ):
        # Pre-Commit copies left for the scan: detection interrupted the
        # establishment, so the coordinator moves straight to the
        # recovery barrier — processors stay parked until it completes
        return [("recover",)]

    items = mcfg.model_items()
    for n in range(mcfg.acting_nodes):
        if not machine.nodes[n].alive:
            continue
        for i in items:
            events.append(("r", n, i))
            events.append(("w", n, i))

    if mcfg.evictions:
        for node in machine.nodes:
            if not node.alive:
                continue
            for i in items:
                if node.am.state(i) in _EVICTABLE:
                    events.append(("evict", node.node_id, i))

    if mcfg.duplicates:
        ecp = mcfg.protocol == "ecp"
        for node in machine.nodes:
            if not node.alive:
                continue
            for i in items:
                state = node.am.state(i)
                if state is S.INVALID:
                    # a retransmitted INVALIDATE lands after its effect
                    # applied (acting nodes only: spares add no coverage)
                    if node.node_id < mcfg.acting_nodes:
                        events.append(("dup_invalidate", node.node_id, i))
                else:
                    events.append(("dup_inject", node.node_id, i))
                if ecp and state is S.INV_CK2:
                    events.append(("dup_partner_invalidate", node.node_id, i))

    if mcfg.checkpoints and not pending:
        events.append(("ckpt",))
        # lossy variants directly after the clean one: their end state
        # must merge with the state ("ckpt",) just put in `seen`
        if mcfg.lossy:
            for spec in LOSSY_SCHEDULES:
                events.append(("ckpt_lossy", spec))
        for k in range(len(live)):
            events.append(("ckpt_abort", k))

    if mcfg.failures and not ever_failed:
        for f in _fail_candidates(machine, mcfg):
            events.append(("fail", f))
            if mcfg.checkpoints:
                for k in range(len(live) + 1):
                    events.append(("ckpt_fail_create", f, k, "revert"))
                    events.append(("ckpt_fail_create", f, k, "leave"))
                    events.append(("ckpt_fail_commit", f, k))

    if mcfg.membership:
        if not machine.nodes[mcfg.joiner].joined:
            # a join may land at any point, including while a failed
            # node awaits recovery (the real injector does not wait)
            events.append(("join",))
            if mcfg.checkpoints and not pending:
                for k in range(len(live) + 1):
                    events.append(("ckpt_join_create", k))
                    events.append(("ckpt_join_commit", k))
        if mcfg.checkpoints and not pending:
            events.append(("handoff",))
            events.append(("ckpt_handoff_sync",))

    if pending:
        events.append(("recover",))
    return events


def _fail_candidates(machine: Machine, mcfg: ModelConfig) -> list[int]:
    """Acting nodes plus any node holding a copy of a model item —
    failing an empty spare adds states without exercising anything."""
    interesting = set(range(mcfg.acting_nodes))
    for node in machine.nodes:
        for i in mcfg.model_items():
            if node.am.state(i) is not S.INVALID:
                interesting.add(node.node_id)
    return sorted(n for n in interesting if machine.nodes[n].alive)


def apply_event(machine: Machine, event: Event) -> bool:
    """Apply one event; returns False when the event blocked.

    A blocked event (a request timing out against a dead node, an
    injection finding no acceptor) may still have mutated state — in the
    real machine the requester stalls until recovery with exactly that
    partial state in place — so callers must hash the state either way.
    """
    protocol = machine.protocol
    now = machine.engine.now
    kind = event[0]
    try:
        if kind == "r":
            protocol.read(event[1], _addr(machine, event[2]), now)
        elif kind == "w":
            protocol.write(event[1], _addr(machine, event[2]), now)
        elif kind == "evict":
            _evict(machine, event[1], event[2])
        elif kind == "ckpt":
            _establish(machine)
        elif kind == "ckpt_abort":
            _establish(machine, abort_after=event[1])
        elif kind == "ckpt_fail_create":
            _establish(
                machine, fail_node=event[1], fail_after=event[2],
                fail_phase="create", leave_pre_commit=event[3] == "leave",
            )
        elif kind == "ckpt_fail_commit":
            _establish(machine, fail_node=event[1], fail_after=event[2],
                       fail_phase="commit")
        elif kind == "fail":
            _fail(machine, event[1])
        elif kind == "recover":
            _recover(machine)
        elif kind == "join":
            _join(machine)
        elif kind == "ckpt_join_create":
            _establish(machine, join_after_create=event[1])
        elif kind == "ckpt_join_commit":
            _establish(machine, join_after_commit=event[1])
        elif kind == "handoff":
            # between episodes a handoff is pure strategy bookkeeping:
            # the hook is the mutation surface the model must cover
            machine.recovery.handoff_cycles("ckpt")
        elif kind == "ckpt_handoff_sync":
            machine.recovery.handoff_cycles("ckpt")
            _establish(machine, rotate=1)
        elif kind in ("dup_invalidate", "dup_partner_invalidate", "dup_inject"):
            _redeliver(machine, event)
        elif kind == "ckpt_lossy":
            _force_schedule(machine, event[1])
            _establish(machine)
        else:
            raise ValueError(f"unknown model event {event!r}")
    except (NodeUnavailable, InjectionFailed, CapacityError, EstablishmentFailed):
        return False
    finally:
        # force every subsequent op through the AM protocol: cache hits
        # would silently absorb transitions the model wants to observe
        for node in machine.nodes:
            node.cache.invalidate_all()
    return True


def _evict(machine: Machine, node_id: int, item: int) -> None:
    """Force replacement of one copy, as _make_room would on pressure:
    replaceable copies are silently dropped, precious ones injected."""
    protocol = machine.protocol
    node = machine.nodes[node_id]
    state = node.am.state(item)
    now = machine.engine.now
    if state.is_replaceable:
        node.am.set_state(item, S.INVALID)
        protocol.on_shared_copy_dropped(node_id, item, now)
    else:
        cause = protocol._replacement_cause(state)
        protocol.injector.inject(node_id, item, state, now, cause, drop_local=True)


def _redeliver(machine: Machine, event: Event) -> None:
    """Deliver one already-applied protocol message a second time, as a
    retransmitted duplicate that escaped the transport's sequence check
    would; the idempotent handler must leave the canonical state
    untouched (exactly-once effect)."""
    kind, node_id, item = event
    protocol = machine.protocol
    before = canonical_state(machine)
    if kind == "dup_invalidate":
        changed = protocol.deliver_invalidate(node_id, item)
    elif kind == "dup_partner_invalidate":
        changed = protocol.deliver_partner_invalidate(node_id, item)
    else:  # dup_inject: the INJECT_DATA install path runs twice
        state = machine.nodes[node_id].am.state(item)
        protocol.injector._install(node_id, item, state, machine.engine.now)
        changed = False
    if changed or canonical_state(machine) != before:
        raise DuplicateEffectError(
            f"{format_event(event)} was not suppressed: the duplicate "
            "changed protocol state"
        )


def _force_schedule(machine: Machine, spec: str) -> None:
    """Script the transport's next packet fates from a schedule string."""
    from repro.network.transport import DeliveryFate

    fates = {
        "d": DeliveryFate.DROPPED,
        "u": DeliveryFate.DUPLICATED,
    }
    machine.transport.faults.force(*(fates[c] for c in spec))


def _fail(machine: Machine, node_id: int) -> None:
    """Permanent fail-silent failure, without engine-scheduled
    detection: the model decides when detection consequences (the
    ``recover`` event) run."""
    node = machine.nodes[node_id]
    node.fail()
    machine.stats.n_failures += 1
    machine.registry.on_node_failed(node_id)
    machine.directory.wipe_node(node_id)
    machine.ring.mark_dead(node_id)
    machine.coordinator.on_node_failed(node_id)
    machine.notify_verifiers("on_failure", node_id)


def _join(machine: Machine, complete: bool = True) -> None:
    """Admit the unjoined slot: the machine's ``join_node`` state
    effects with the timing collapsed.  ``complete=False`` performs
    only the *admission* half (node powers on, membership registered,
    strategy catch-up runs) — ``Machine.join_node`` defers the
    completion half (ring revival, pointer reclamation) until no
    establishment is in flight, so a join landing mid-episode must
    too: reviving the ring mid-episode would let the injector place a
    recovery-pair partner on a node that is not an episode participant
    and whose Pre-Commit copy nobody would ever commit."""
    joiner = len(machine.nodes) - 1
    node = machine.nodes[joiner]
    node.join()
    machine.stats.n_joins += 1
    machine.registry.on_node_joined(joiner)
    _drain(machine, machine.recovery.join_node(joiner))
    if complete:
        _join_complete(machine)


def _join_complete(machine: Machine) -> None:
    joiner = len(machine.nodes) - 1
    machine.nodes[joiner].pointers_rehosted = True
    machine.ring.revive(joiner)


def _recover(machine: Machine) -> None:
    recovery = machine.recovery
    for node in machine.nodes:
        if node.alive:
            recovery.scan_node(node.node_id)
    _drain(machine, recovery.reconfigure())
    machine.rewind_streams()
    machine.stats.n_recoveries += 1
    machine.coordinator.recovery_requested = False
    machine.notify_verifiers("on_recovery_complete")


def _establish(
    machine: Machine,
    abort_after: int | None = None,
    fail_node: int | None = None,
    fail_after: int = 0,
    fail_phase: str = "create",
    leave_pre_commit: bool = False,
    join_after_create: int | None = None,
    join_after_commit: int | None = None,
    rotate: int = 0,
) -> None:
    """One establishment episode, mirroring Coordinator semantics:
    creates on all live nodes, then commits on all live nodes; a failure
    during create aborts, a failure during commit drains (the remaining
    nodes still commit before the recovery barrier can form).

    ``join_after_create``/``join_after_commit`` land the unjoined
    slot's admission inside the episode, after that many phases — the
    joiner is *not* a participant of the in-flight episode (it was not
    at the sync barrier), it merely changes global membership state
    under the episode's feet.  ``rotate`` issues the phases in a
    rotated node order, as an incoming leader after a sync-point
    handoff would."""
    recovery = machine.recovery
    live = [n.node_id for n in machine.nodes if n.alive]
    if rotate:
        live = live[rotate:] + live[:rotate]
    aborted = False
    join_pending = join_after_create is not None or join_after_commit is not None
    joined_mid = False

    recovery.begin_establishment()
    done = 0
    for node_id in live:
        if join_after_create is not None and done >= join_after_create:
            _join(machine, complete=False)
            join_after_create = None
            joined_mid = True
        if abort_after is not None and done >= abort_after:
            aborted = True
            break
        if fail_node is not None and fail_phase == "create" and done >= fail_after:
            _fail(machine, fail_node)
            aborted = True  # the dead participant never voted ready
            break
        if not machine.nodes[node_id].alive:
            continue
        try:
            _drain(machine, recovery.node_create_phase(node_id))
        except EstablishmentFailed:
            aborted = True
            break
        done += 1
    if join_after_create is not None and not aborted:
        _join(machine, complete=False)  # after every create, pre-commit
        join_after_create = None
        joined_mid = True

    if aborted:
        if not leave_pre_commit:
            # failure-free abort (or late detection): revert in place
            for node_id in live:
                if machine.nodes[node_id].alive:
                    recovery.abort_node(node_id)
            if fail_node is None:
                machine.notify_verifiers("on_establishment_aborted")
        # with leave_pre_commit the copies stay for the recovery scan
        if joined_mid:
            _join_complete(machine)  # the episode is over: join finishes
        elif join_pending:
            _join(machine)  # the episode died before the join position
        return

    done = 0
    for node_id in live:
        if join_after_commit is not None and done >= join_after_commit:
            _join(machine, complete=False)
            join_after_commit = None
            joined_mid = True
        if fail_node is not None and fail_phase == "commit" and done >= fail_after \
                and machine.nodes[fail_node].alive:
            _fail(machine, fail_node)
        if not machine.nodes[node_id].alive:
            continue
        recovery.commit_node(node_id)
        done += 1
    if join_after_commit is not None:
        _join(machine, complete=False)  # after the last commit
        joined_mid = True
    machine.stats.n_checkpoints += 1
    machine.snapshot_streams()
    machine.notify_verifiers("on_establishment_complete")
    if joined_mid:
        _join_complete(machine)  # no episode in flight any more


# --------------------------------------------------------------- search


def replay(
    mcfg: ModelConfig,
    trace: Iterable[Event],
    mutate: Callable[[Machine], None] | None = None,
) -> Machine:
    """Re-execute a trace on a fresh machine (deterministic)."""
    machine = build_machine(mcfg, mutate)
    for event in trace:
        apply_event(machine, event)
    return machine


def check(
    mcfg: ModelConfig,
    mutate: Callable[[Machine], None] | None = None,
    progress: Callable[[str], None] | None = None,
) -> ModelResult:
    """Breadth-first exhaustive exploration; stops at the first
    invariant violation with a replayable counterexample."""
    result = ModelResult(config=mcfg)
    root = build_machine(mcfg, mutate)

    violations = check_machine(root, _context(root))
    if violations:
        result.counterexample = Counterexample((), violations, dump_state(root))
        return result

    seen = {canonical_state(root)}
    frontier: deque[tuple[Event, ...]] = deque([()])
    result.states = 1

    while frontier:
        trace = frontier.popleft()
        depth = len(trace)
        if mcfg.max_depth is not None and depth >= mcfg.max_depth:
            continue
        at = replay(mcfg, trace, mutate)
        for event in enabled_events(at, mcfg):
            machine = replay(mcfg, trace, mutate)
            try:
                apply_event(machine, event)
            except UnrecoverableFailure as exc:
                # the model only injects single failures, which the
                # paper guarantees recoverable — failing to recover IS
                # a protocol bug, not an out-of-model state
                result.transitions += 1
                result.counterexample = Counterexample(
                    trace + (event,),
                    [Violation("RECOVERABILITY", None, str(exc))],
                    dump_state(machine),
                )
                return result
            except DuplicateEffectError as exc:
                result.transitions += 1
                result.counterexample = Counterexample(
                    trace + (event,),
                    [Violation("EXACTLY-ONCE", None, str(exc))],
                    dump_state(machine),
                )
                return result
            result.transitions += 1
            extended = trace + (event,)
            violations = check_machine(machine, _context(machine))
            if violations:
                result.counterexample = Counterexample(
                    extended, violations, dump_state(machine)
                )
                return result
            if event[0] == "ckpt_lossy":
                # fault masking: a retried establishment must land on
                # exactly the loss-free establishment's state — in
                # particular no node commits a recovery point another
                # node is missing
                reference = replay(mcfg, trace + (("ckpt",),), mutate)
                if canonical_state(machine) != canonical_state(reference):
                    result.counterexample = Counterexample(
                        extended,
                        [Violation(
                            "LOSSY-CKPT", None,
                            f"establishment under drop/dup schedule "
                            f"{event[1]!r} diverged from the loss-free "
                            "establishment",
                        )],
                        dump_state(machine),
                    )
                    return result
            key = canonical_state(machine)
            if key in seen:
                continue
            seen.add(key)
            result.states += 1
            result.max_depth_reached = max(result.max_depth_reached, depth + 1)
            if result.states >= mcfg.max_states:
                return result  # bounded: complete stays False
            frontier.append(extended)
        if progress is not None and result.states % 500 == 0:
            progress(
                f"{result.states} states, {result.transitions} transitions, "
                f"frontier {len(frontier)}"
            )

    result.complete = mcfg.max_depth is None
    return result
