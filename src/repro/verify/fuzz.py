"""Deterministic schedule fuzzing: seeded, replayable event orders.

Exhaustive model checking (:mod:`repro.verify.model`) covers tiny
scopes completely; the fuzzer trades completeness for reach.  Both
layers share the event alphabet and the invariant definitions, so a
fuzz failure replays exactly — rerun with the reported seed and the
same trace (and therefore the same violation) falls out, because the
protocol consumes no randomness of its own.

Two harnesses:

``fuzz_events``
    A seeded random walk over the model checker's event alphabet on a
    bare machine, invariants checked after every event.  Scales to many
    more nodes/items/steps than BFS.

``fuzz_run``
    A full engine-driven simulation — synthetic workload, checkpoint
    scheduler, optional fault injection — with the runtime observer and
    the value oracle attached, so the production simulation paths
    themselves are exercised under randomized timing parameters.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.config import ArchConfig
from repro.fault.failures import FailurePlan
from repro.machine import Machine
from repro.verify.invariants import Violation, check_machine, dump_state
from repro.verify.model import (
    Counterexample,
    Event,
    ModelConfig,
    _context,
    apply_event,
    build_machine,
    enabled_events,
)
from repro.workloads.synthetic import MigratoryShared, UniformShared


@dataclass
class FuzzReport:
    """Outcome of one seeded fuzz episode."""

    seed: int
    steps: int = 0
    checks: int = 0
    trace: tuple[Event, ...] = ()
    counterexample: Counterexample | None = None

    @property
    def ok(self) -> bool:
        return self.counterexample is None

    def summary(self) -> str:
        verdict = "OK" if self.ok else "VIOLATION"
        return f"fuzz seed {self.seed}: {verdict} — {self.steps} events checked"


def fuzz_events(
    mcfg: ModelConfig,
    seed: int,
    steps: int = 200,
    mutate=None,
) -> FuzzReport:
    """Random walk over the model event alphabet; replayable from seed."""
    rng = random.Random(seed)
    machine = build_machine(mcfg, mutate)
    report = FuzzReport(seed=seed)
    trace: list[Event] = []
    for _ in range(steps):
        events = enabled_events(machine, mcfg)
        if not events:
            break
        event = rng.choice(events)
        trace.append(event)
        apply_event(machine, event)
        report.steps += 1
        violations = check_machine(machine, _context(machine))
        report.checks += 1
        if violations:
            report.counterexample = Counterexample(
                tuple(trace), violations, dump_state(machine)
            )
            break
    report.trace = tuple(trace)
    return report


def fuzz_run(
    seed: int,
    n_nodes: int = 9,
    refs_per_proc: int = 1500,
    with_failure: bool = True,
) -> FuzzReport:
    """One engine-driven run with randomized parameters, fully checked.

    The runtime observer raises on the first violated invariant, so a
    clean return means every transition of the run passed; the report
    counts the checks performed.
    """
    rng = random.Random(seed)
    cfg = ArchConfig(n_nodes=n_nodes, seed=seed).with_ft(
        checkpoint_period_override=rng.choice([8_000, 20_000, 50_000]),
        detection_latency=rng.choice([200, 1000]),
    )
    workload_cls = rng.choice([UniformShared, MigratoryShared])
    if workload_cls is UniformShared:
        workload = UniformShared(
            n_procs=n_nodes,
            refs_per_proc=refs_per_proc,
            write_fraction=rng.choice([0.1, 0.3, 0.5]),
            window_items=rng.choice([4, 64]),
            seed=seed,
        )
    else:
        workload = MigratoryShared(
            n_procs=n_nodes,
            refs_per_proc=refs_per_proc,
            n_objects=rng.choice([16, 256]),
            seed=seed,
        )
    plan: list[FailurePlan] = []
    if with_failure:
        permanent = rng.random() < 0.5
        plan.append(
            FailurePlan(
                time=rng.randrange(5_000, 60_000),
                node=rng.randrange(n_nodes),
                permanent=permanent,
                repair_delay=0 if permanent else rng.choice([5_000, 10_000]),
            )
        )
    machine = Machine(cfg, workload, protocol="ecp", failure_plan=plan)
    observer = machine.attach_verifier()  # raises on violation
    machine.attach_oracle()
    machine.run()
    machine.check_invariants()  # strict end-state audit
    return FuzzReport(seed=seed, steps=observer.checks, checks=observer.checks)


def fuzz_batch(
    seeds: range,
    mcfg: ModelConfig | None = None,
    steps: int = 200,
) -> list[FuzzReport]:
    """Run one ``fuzz_events`` episode per seed; returns all reports."""
    mcfg = mcfg or ModelConfig(acting_nodes=3, n_items=2, failures=True)
    return [fuzz_events(mcfg, seed, steps=steps) for seed in seeds]
