"""A data-value oracle for the value-less analytic simulator.

The simulator models coherence state machines and timing, not memory
*contents*.  For verification we need contents: differential tests must
compare "externally-visible read values" between the standard protocol
and the ECP, and recovery tests must show the machine rolls back to
exactly the last committed recovery point.

:class:`VersionOracle` supplies the missing semantics with shadow
version numbers: every write to an item bumps its version, every read
observes the current version, a commit snapshots the version vector and
a recovery restores it (together with the machine's stream rewind, this
is the paper's BER contract, Section 3).  Because coherence transactions
apply atomically, sequential consistency of the simulated machine
reduces to: *every read observes the version left by the last write* —
which the oracle makes directly comparable across protocols as the
``log`` of ``(op, node, item, version)`` tuples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine import Machine


class VersionOracle:
    """Shadow write-versions with commit/rollback semantics."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.versions: dict[int, int] = {}
        self.committed: dict[int, int] = {}
        #: Sequence of (op, node, item, version) in execution order.
        self.log: list[tuple[str, int, int, int]] = []
        self._attached = False

    # -- event API (also driven by the machine hooks) --------------------

    def on_read(self, node_id: int, item: int) -> int:
        version = self.versions.get(item, 0)
        self.log.append(("r", node_id, item, version))
        return version

    def on_write(self, node_id: int, item: int) -> int:
        version = self.versions.get(item, 0) + 1
        self.versions[item] = version
        self.log.append(("w", node_id, item, version))
        return version

    def on_establishment_complete(self) -> None:
        """The new recovery point commits the current versions."""
        self.committed = dict(self.versions)

    def on_failure(self, node_id: int) -> None:  # symmetry with observer
        pass

    def on_recovery_complete(self) -> None:
        """Rollback: visible memory reverts to the committed versions."""
        self.versions = dict(self.committed)
        self.log.append(("rollback", -1, -1, -1))

    # -- wiring ----------------------------------------------------------

    def attach(self) -> "VersionOracle":
        """Wrap the protocol so reads/writes feed the oracle."""
        if self._attached:
            return self
        self._attached = True
        protocol = self.machine.protocol
        item_of = self.machine.cfg.item_of
        inner_read, inner_write = protocol.read, protocol.write

        def read(node_id: int, addr: int, now: int) -> int:
            t = inner_read(node_id, addr, now)
            self.on_read(node_id, item_of(addr))
            return t

        def write(node_id: int, addr: int, now: int) -> int:
            t = inner_write(node_id, addr, now)
            self.on_write(node_id, item_of(addr))
            return t

        protocol.read = read
        protocol.write = write
        return self
