"""Runtime invariant checking: a pluggable observer over a machine.

:class:`InvariantObserver` wraps the mutating entry points of the
protocol — processor reads/writes, the create/commit/abort/recovery
scans — and re-evaluates the global invariants of
:mod:`repro.verify.invariants` after every transition.  A violation
raises :class:`InvariantViolationError` carrying the transition that
broke the machine and a dump of the global state, so the failure is
debuggable without re-running.

The observer keeps a small *phase machine* mirroring the coordination
protocol (Fig. 2 / Section 3.4), because several invariants are
phase-dependent: Pre-Commit copies are legal only during an
establishment, incomplete recovery pairs only during commits and
failure windows, and directory agreement is suspended while the
metadata rebuild runs.

Attach it with :meth:`Machine.attach_verifier` (or construct directly
for a hand-driven machine).  Checks happen at *transition* granularity:
the protocol's analytic transactions apply their state changes
atomically, so every wrapped call observes a quiescent global state.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from repro.verify.invariants import (
    CheckContext,
    Violation,
    check_machine,
    dump_state,
    format_violations,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine import Machine


class InvariantViolationError(AssertionError):
    """A protocol transition left the machine in an illegal state."""

    def __init__(self, transition: str, violations: list[Violation], state: str):
        self.transition = transition
        self.violations = violations
        self.state = state
        super().__init__(
            f"invariant violation after {transition}:\n"
            f"{format_violations(violations)}\n"
            f"global state:\n{state}"
        )


#: Phase -> invariant relaxations (see invariants.CheckContext).
_PHASE_CONTEXT = {
    "normal": CheckContext(),
    "create": CheckContext(allow_pre_commit=True, allow_incomplete_pairs=True),
    "commit": CheckContext(allow_pre_commit=True, allow_incomplete_pairs=True),
    # scans run node by node: until the last one, restored Shared-CK
    # copies coexist with current copies on not-yet-scanned nodes, so
    # no cross-node invariant holds mid-scan — only each AM's own
    # consistency.  on_recovery_complete re-checks everything strictly.
    "recovery": CheckContext(
        allow_pre_commit=True,
        allow_incomplete_pairs=True,
        allow_singleton_ck=True,
        check_directory=False,
        cross_node=False,
    ),
}


class InvariantObserver:
    """Checks every protocol transition of one machine."""

    def __init__(self, machine: "Machine", raise_on_violation: bool = True):
        self.machine = machine
        self.raise_on_violation = raise_on_violation
        self.phase = "normal"
        #: A node failed and recovery has not completed: pairs may be
        #: singletons, metadata may reference the dead node.
        self.failed_window = False
        self.checks = 0
        #: Violations collected in ``raise_on_violation=False`` mode.
        self.violations: list[tuple[str, Violation]] = []
        self._wrapped = False

    # -- context -------------------------------------------------------

    def context(self) -> CheckContext:
        ctx = _PHASE_CONTEXT[self.phase]
        if self.failed_window and self.phase != "recovery":
            ctx = CheckContext(
                allow_pre_commit=ctx.allow_pre_commit,
                allow_incomplete_pairs=ctx.allow_incomplete_pairs,
                allow_singleton_ck=True,
                check_directory=ctx.check_directory,
            )
        return ctx

    # -- the check -----------------------------------------------------

    def check_now(self, transition: str) -> list[Violation]:
        """Evaluate all invariants; raise or record on breakage."""
        self.checks += 1
        violations = check_machine(self.machine, self.context())
        stats = self.machine.stats
        stats.invariant_checks += 1
        if violations:
            stats.invariant_violations += len(violations)
            if self.raise_on_violation:
                raise InvariantViolationError(
                    transition, violations, dump_state(self.machine)
                )
            self.violations.extend((transition, v) for v in violations)
        return violations

    # -- phase notifications -------------------------------------------

    def on_establishment_complete(self) -> None:
        """All live nodes committed the new recovery point."""
        self.phase = "normal"
        self.check_now("establishment complete")

    def on_establishment_aborted(self) -> None:
        """A failure-free abort fully reverted the Pre-Commit copies."""
        self.phase = "normal"
        self.check_now("establishment aborted")

    def on_failure(self, node_id: int) -> None:
        self.failed_window = True
        self.check_now(f"fail(node={node_id})")

    def on_recovery_complete(self) -> None:
        """Scans + metadata rebuild + reconfiguration all done."""
        self.phase = "normal"
        self.failed_window = False
        self.check_now("recovery complete")

    # -- wrapping ------------------------------------------------------

    def attach(self) -> "InvariantObserver":
        """Wrap the machine's protocol entry points in-place."""
        if self._wrapped:
            return self
        self._wrapped = True
        protocol = self.machine.protocol

        self._wrap(protocol, "read", self._after_op)
        self._wrap(protocol, "write", self._after_op)
        if hasattr(protocol, "mark_precommit_local"):
            self._wrap(protocol, "mark_precommit_local", self._after_create_step)
            self._wrap(protocol, "mark_precommit_replica", self._after_create_step)
            self._wrap(protocol, "commit_node", self._after_commit)
            self._wrap(protocol, "abort_establishment_node", self._after_commit)
            self._wrap(protocol, "recovery_scan_node", self._after_scan)
        self._wrap(self.machine, "fail_node", self._after_fail)
        return self

    def _wrap(self, obj, name: str, after: Callable[[str], None]) -> None:
        inner = getattr(obj, name)

        def wrapper(*args, **kwargs):
            result = inner(*args, **kwargs)
            after(f"{name}{args!r}")
            return result

        wrapper.__name__ = f"checked_{name}"
        setattr(obj, name, wrapper)

    # -- per-transition hooks -------------------------------------------

    def _after_op(self, transition: str) -> None:
        # reads and writes only run outside establishment episodes (the
        # coordinator parks every processor at the barriers), so their
        # occurrence ends any commit still tracked by inference
        if self.phase in ("create", "commit") and not self._pre_commit_left():
            self.phase = "normal"
        self.check_now(transition)

    def _after_create_step(self, transition: str) -> None:
        self.phase = "create"
        self.check_now(transition)

    def _after_commit(self, transition: str) -> None:
        self.phase = "commit"
        self.check_now(transition)

    def _after_scan(self, transition: str) -> None:
        self.phase = "recovery"
        self.check_now(transition)

    def _after_fail(self, transition: str) -> None:
        self.failed_window = True
        self.check_now(transition)

    def _pre_commit_left(self) -> bool:
        return any(
            node.alive and node.am.count_in_group("pre_commit")
            for node in self.machine.nodes
        )
