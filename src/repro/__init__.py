"""Fault-tolerant COMA — reproduction of Morin et al., ISCA 1996.

Public API
==========

Build a machine and run it::

    from repro import ArchConfig, Machine, make_workload

    cfg = ArchConfig(n_nodes=16).with_ft(checkpoint_frequency_hz=100)
    wl = make_workload("mp3d", n_procs=16, scale=0.002)
    result = Machine(cfg, wl, protocol="ecp").run()
    print(result.total_cycles, result.stats.n_checkpoints)

Inject failures::

    from repro import FailurePlan
    plan = [FailurePlan(time=200_000, node=3, permanent=True)]
    Machine(cfg, wl, protocol="ecp", failure_plan=plan).run()

The experiment harnesses that regenerate every table and figure of the
paper live in :mod:`repro.experiments`.
"""

from repro.config import (
    AMConfig,
    ArchConfig,
    CacheConfig,
    FaultToleranceConfig,
    LatencyConfig,
    PAPER_FREQUENCIES_HZ,
    PAPER_NODE_COUNTS,
    mesh_dimensions,
)
from repro.coherence import (
    ExtendedProtocol,
    InjectionCause,
    NodeUnavailable,
    ProtocolError,
    StandardProtocol,
)
from repro.checkpoint.recovery import UnrecoverableFailure
from repro.fault import FailurePlan
from repro.machine import Machine, RunResult
from repro.bus import BusConfig, BusMachine
from repro.dsvm import DsvmConfig, DsvmMachine
from repro.numa import NumaMachine
from repro.memory.states import ItemState, LineState
from repro.workloads import (
    BarnesHut,
    Cholesky,
    DATACENTER_WORKLOADS,
    Mp3d,
    ScanAnalytics,
    StreamingTraceWorkload,
    Water,
    Reference,
    SPLASH_WORKLOADS,
    TraceWorkload,
    Workload,
    ZipfKV,
    make_workload,
)

__version__ = "1.6.0"

__all__ = [
    "AMConfig",
    "ArchConfig",
    "CacheConfig",
    "FaultToleranceConfig",
    "LatencyConfig",
    "PAPER_FREQUENCIES_HZ",
    "PAPER_NODE_COUNTS",
    "mesh_dimensions",
    "ExtendedProtocol",
    "InjectionCause",
    "NodeUnavailable",
    "ProtocolError",
    "StandardProtocol",
    "UnrecoverableFailure",
    "FailurePlan",
    "Machine",
    "RunResult",
    "BusConfig",
    "BusMachine",
    "DsvmConfig",
    "DsvmMachine",
    "NumaMachine",
    "ItemState",
    "LineState",
    "BarnesHut",
    "Cholesky",
    "Mp3d",
    "Water",
    "Reference",
    "SPLASH_WORKLOADS",
    "DATACENTER_WORKLOADS",
    "TraceWorkload",
    "StreamingTraceWorkload",
    "Workload",
    "ZipfKV",
    "ScanAnalytics",
    "make_workload",
    "__version__",
]
