"""Counters collected during a run.

Per-node counters live in :class:`NodeStats`; run-wide aggregation and
the paper's derived metrics (miss rates, injections per 10 000
references, replication throughput) are provided by
:class:`MachineStats`.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.coherence.injection import InjectionCause


@dataclass
class NodeStats:
    """Counters owned by one node."""

    node_id: int

    # reference stream
    refs: int = 0
    reads: int = 0
    writes: int = 0

    # accesses that reached the AM (i.e. processor-cache misses)
    am_read_accesses: int = 0
    am_write_accesses: int = 0
    # AM misses (needed a remote transaction)
    am_read_misses: int = 0
    am_write_misses: int = 0
    #: Reads served locally by a Shared-CK recovery copy (an ECP benefit
    #: the paper highlights in Section 4.2.3).
    sharedck_reads: int = 0

    # injections, by cause
    injections: Counter = field(default_factory=Counter)
    injection_probe_hops: int = 0
    bytes_injected: int = 0

    # checkpointing
    ckpt_items_replicated: int = 0
    ckpt_items_reused: int = 0
    ckpt_bytes_replicated: int = 0
    ckpt_create_cycles: int = 0
    ckpt_commit_cycles: int = 0
    ckpt_sync_cycles: int = 0

    # recovery
    recovery_scan_cycles: int = 0
    reconfig_items_recreated: int = 0

    def record_injection(self, cause: "InjectionCause", bytes_moved: int, probe_hops: int) -> None:
        self.injections[cause] += 1
        self.bytes_injected += bytes_moved
        self.injection_probe_hops += probe_hops

    # -- derived -------------------------------------------------------

    @property
    def am_accesses(self) -> int:
        return self.am_read_accesses + self.am_write_accesses

    @property
    def am_misses(self) -> int:
        return self.am_read_misses + self.am_write_misses

    def am_miss_rate(self) -> float:
        """AM misses per processor reference (the Fig. 5 metric)."""
        if self.refs == 0:
            return 0.0
        return self.am_misses / self.refs

    def am_read_miss_rate(self) -> float:
        if self.reads == 0:
            return 0.0
        return self.am_read_misses / self.reads

    def am_write_miss_rate(self) -> float:
        if self.writes == 0:
            return 0.0
        return self.am_write_misses / self.writes

    def injections_per_10k_refs(self, causes=None) -> float:
        """Injections per 10 000 memory references (Figs. 6 and 11)."""
        if self.refs == 0:
            return 0.0
        if causes is None:
            total = sum(self.injections.values())
        else:
            total = sum(self.injections[c] for c in causes)
        return total / self.refs * 10_000


@dataclass
class MachineStats:
    """Run-wide counters and aggregation over nodes."""

    # wall-clock decomposition (cycles)
    total_cycles: int = 0
    create_cycles: int = 0
    commit_cycles: int = 0
    recovery_cycles: int = 0

    n_checkpoints: int = 0
    n_recoveries: int = 0
    n_failures: int = 0
    # elastic membership (repro.machine.Machine.join_node and the
    # coordinator's leader handoff); all stay zero on static runs
    #: Nodes admitted mid-run (joins that reached catch-up).
    n_joins: int = 0
    #: Joins killed by a failure before catch-up completed.
    joins_aborted: int = 0
    #: Cycles between join admission and the node serving references.
    join_latency_cycles: int = 0
    #: Bytes moved to bring joiners current (pointer-partition reclaim
    #: plus per-strategy catch-up state).
    catchup_bytes: int = 0
    #: References the rest of the machine served while a join was in
    #: flight (the availability-under-reconfiguration metric).
    refs_during_reconfig: int = 0
    #: Deliberate leader handoffs applied by the coordinator.
    n_handoffs: int = 0
    #: Planned or triggered failures skipped because the target node was
    #: already dead at fire time (recorded no-ops, never errors).
    n_failures_skipped: int = 0
    #: References undone by recoveries: sum over rollbacks of how far
    #: each stream was rewound (the campaign's work-lost metric).
    rollback_refs: int = 0

    # reliable-delivery transport (repro.network.transport); all stay
    # zero unless the interconnect is configured unreliable
    #: Retransmissions of logical messages (attempts beyond the first).
    transport_retries: int = 0
    #: Retransmission timers that expired (lost message or lost ack).
    transport_timeouts: int = 0
    #: Flits that crossed the network more than once for one message.
    transport_retransmitted_flits: int = 0
    #: Deliveries discarded by receiver-side sequence checks.
    transport_duplicates_suppressed: int = 0
    #: Positive acks sent by receivers.
    transport_acks: int = 0
    #: Destinations escalated to the detection layer after consecutive
    #: timeouts (suspected failures, alive or not).
    transport_suspicions: int = 0
    #: Transport suspicions whose target was in fact alive (discarded
    #: by the idempotent ``detect_failure``).
    spurious_suspicions: int = 0

    # runtime verification (repro.verify): invariant evaluations and
    # the violations they surfaced
    invariant_checks: int = 0
    invariant_violations: int = 0

    node_stats: list[NodeStats] = field(default_factory=list)

    # -- aggregation ---------------------------------------------------

    def total(self, attr: str) -> int:
        return sum(getattr(ns, attr) for ns in self.node_stats)

    @property
    def refs(self) -> int:
        return self.total("refs")

    @property
    def reads(self) -> int:
        return self.total("reads")

    @property
    def writes(self) -> int:
        return self.total("writes")

    def injection_totals(self) -> Counter:
        result: Counter = Counter()
        for ns in self.node_stats:
            result.update(ns.injections)
        return result

    @property
    def compute_cycles(self) -> int:
        """Cycles not spent in checkpoint or recovery machinery: the
        baseline-comparable execution time component."""
        return (
            self.total_cycles
            - self.create_cycles
            - self.commit_cycles
            - self.recovery_cycles
        )

    def mean_am_miss_rate(self) -> float:
        rates = [ns.am_miss_rate() for ns in self.node_stats if ns.refs]
        return sum(rates) / len(rates) if rates else 0.0

    def mean_injections_per_10k(self, causes=None) -> float:
        values = [
            ns.injections_per_10k_refs(causes) for ns in self.node_stats if ns.refs
        ]
        return sum(values) / len(values) if values else 0.0

    def ckpt_bytes_replicated(self) -> int:
        return self.total("ckpt_bytes_replicated")

    def replication_throughput_bytes_per_s(self, cycle_seconds: float) -> float:
        """Aggregate recovery-data throughput during create phases
        (Figs. 4 and 9): bytes of recovery data moved or marked divided
        by the wall-clock time of the create phases.  Both numerator
        and denominator shrink together under workload scaling, so the
        metric is scale-robust."""
        if self.create_cycles == 0:
            return 0.0
        seconds = self.create_cycles * cycle_seconds
        return self.ckpt_bytes_replicated() / seconds

    def per_node_replication_throughput(self, cycle_seconds: float) -> float:
        live = len(self.node_stats)
        if live == 0:
            return 0.0
        return self.replication_throughput_bytes_per_s(cycle_seconds) / live
