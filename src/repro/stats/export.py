"""Export experiment rows as CSV or JSON.

The benchmark harnesses return plain row lists; these helpers persist
them so figures can be re-plotted outside the terminal.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Any, Sequence


def rows_to_csv(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], path: str | Path
) -> None:
    """Write header + rows as CSV."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("row width does not match header width")
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        writer.writerows(rows)


def rows_to_json(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], path: str | Path
) -> None:
    """Write rows as a list of header-keyed objects."""
    if any(len(row) != len(headers) for row in rows):
        raise ValueError("row width does not match header width")
    records = [dict(zip(headers, row)) for row in rows]
    Path(path).write_text(json.dumps(records, indent=2))


def load_rows_csv(path: str | Path) -> tuple[list[str], list[list[str]]]:
    """Read back a CSV written by :func:`rows_to_csv`."""
    with open(path, newline="") as fh:
        reader = csv.reader(fh)
        headers = next(reader)
        return headers, [row for row in reader]
