"""ASCII charts for experiment output.

The paper's figures are bar and line charts; the CLI renders their
equivalents as monospace bar charts so a terminal session can *see*
the trends, not just the rows.
"""

from __future__ import annotations

from typing import Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def hbar(value: float, maximum: float, width: int = 40) -> str:
    """A horizontal bar of ``width`` character cells."""
    if maximum <= 0:
        return ""
    fraction = max(0.0, min(1.0, value / maximum))
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    bar = "█" * full
    if remainder > 0 and full < width:
        bar += _BLOCKS[int(remainder * (len(_BLOCKS) - 1))]
    return bar


def bar_chart(
    rows: Sequence[tuple[str, float]],
    title: str | None = None,
    width: int = 40,
    unit: str = "",
) -> str:
    """Render labelled values as a horizontal bar chart."""
    if not rows:
        return title or ""
    maximum = max(value for _label, value in rows)
    label_width = max(len(label) for label, _v in rows)
    lines = []
    if title:
        lines.append(title)
    for label, value in rows:
        bar = hbar(value, maximum, width)
        lines.append(f"{label.rjust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Sequence[tuple[str, Sequence[tuple[str, float]]]],
    title: str | None = None,
    width: int = 40,
    unit: str = "",
) -> str:
    """Bars grouped under sub-headings (e.g. one group per app)."""
    flat = [v for _g, rows in groups for _l, v in rows]
    if not flat:
        return title or ""
    maximum = max(flat)
    label_width = max(
        (len(label) for _g, rows in groups for label, _v in rows), default=1
    )
    lines = []
    if title:
        lines.append(title)
    for group, rows in groups:
        lines.append(f"{group}:")
        for label, value in rows:
            bar = hbar(value, maximum, width)
            lines.append(f"  {label.rjust(label_width)} | {bar} {value:g}{unit}")
    return "\n".join(lines)
