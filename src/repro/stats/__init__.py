"""Statistics collection and reporting."""

from repro.stats.collectors import NodeStats, MachineStats
from repro.stats.report import format_table

__all__ = ["NodeStats", "MachineStats", "format_table"]
