"""Plain-text table formatting for experiment output.

The benchmark harnesses print the same rows/series the paper reports;
this module renders them as aligned monospace tables.
"""

from __future__ import annotations

from typing import Any, Sequence


def _render(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table."""
    cells = [[_render(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError("row width does not match header width")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_percent(value: float, digits: int = 1) -> str:
    return f"{value * 100:.{digits}f}%"


def format_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n:.0f} B"
        n /= 1024
    raise AssertionError("unreachable")
