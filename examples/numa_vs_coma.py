#!/usr/bin/env python
"""Why COMA? — the paper's central architectural argument, measured.

Sections 1 and 3.1 argue that COMA beats CC-NUMA as a substrate for
backward error recovery on three counts:

1. recovery data needs no dedicated storage — it lives in the
   attraction memories, and existing replicas can be *promoted* into
   recovery copies without moving data;
2. recovery-point establishment is not constrained by fixed physical
   addresses;
3. after a permanent failure, lost items are reallocated anywhere;
   a CC-NUMA must re-home an entire partition under new physical
   addresses and pay translation on every later access.

This example runs the same Mp3d workload on both machines and prints
the scorecard.

Run:  python examples/numa_vs_coma.py
"""

from repro import ArchConfig, FailurePlan, Machine, NumaMachine, make_workload
from repro.stats.report import format_table

N_NODES = 16
SCALE = 0.015
CKPT_PERIOD = 60_000  # cycles (~400 points/s at the scaled run length)


def fresh_workload():
    return make_workload("mp3d", n_procs=N_NODES, scale=SCALE)


def main() -> None:
    cfg = ArchConfig(n_nodes=N_NODES).with_ft(checkpoint_period_override=CKPT_PERIOD)

    print("running the COMA/ECP machine...")
    coma = Machine(cfg, fresh_workload(), protocol="ecp").run()

    print("running the CC-NUMA machine (mirror-based checkpoints)...")
    numa = NumaMachine(cfg, fresh_workload()).run()

    print("replaying both with a permanent failure of node 5 (t=150k)...")
    coma_fail_machine = Machine(
        ArchConfig(n_nodes=N_NODES).with_ft(
            checkpoint_period_override=CKPT_PERIOD, detection_latency=500
        ),
        fresh_workload(),
        protocol="ecp",
        failure_plan=[FailurePlan(time=150_000, node=5, permanent=True)],
    )
    coma_fail = coma_fail_machine.run()
    numa_fail = NumaMachine(
        cfg, fresh_workload(), fail_node_at=(150_000, 5)
    ).run()

    item_bytes = 128
    rows = [
        ("recovery points", coma.stats.n_checkpoints, numa.n_checkpoints),
        ("checkpoint data transferred (KB)",
         round(coma.stats.total("ckpt_items_replicated") * item_bytes / 1024, 1),
         round(numa.ckpt_bytes_copied / 1024, 1)),
        ("covered by existing replicas (KB)",
         round(coma.stats.total("ckpt_items_reused") * item_bytes / 1024, 1),
         0.0),
        ("reconfiguration data moved (KB)",
         round(coma_fail.stats.total("reconfig_items_recreated") * item_bytes / 1024, 1),
         round(numa_fail.rehoming_blocks * item_bytes / 1024, 1)),
        ("post-failure translated accesses", 0, numa_fail.translated_accesses),
    ]
    print()
    print(format_table(
        ["metric", "COMA (ECP)", "CC-NUMA (mirrors)"],
        rows,
        title="COMA vs CC-NUMA as a fault-tolerance substrate (Mp3d)",
    ))
    print()
    print("COMA promotes replicas it already has and re-replicates only the")
    print("singleton recovery pairs after a failure; the CC-NUMA transfers")
    print("every modified block, re-homes a whole partition, and keeps paying")
    print("address translation — the paper's Section 3.1 argument. ✓")


if __name__ == "__main__":
    main()
