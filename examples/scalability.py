#!/usr/bin/env python
"""Does the ECP scale? — the paper's 9-to-56-node study (Figs. 8-11).

Grows the machine from 9 to 56 nodes running the fixed-size Cholesky
workload at 100 recovery points per second, and shows that

- the create-phase overhead stays flat (or falls) because each node has
  less recovery data to replicate and the aggregate replication
  throughput grows with the machine;
- read-triggered injections fall on bigger machines (shared items find
  unused memory more easily).

Run:  python examples/scalability.py
"""

from repro.experiments import ScalingSweep, QUICK
from repro.stats.report import format_table


def main() -> None:
    sweep = ScalingSweep(
        apps=("cholesky",),
        node_counts=(9, 16, 30, 56),
        frequency_hz=100.0,
        profile=QUICK,
    )
    rows = []
    for n in sweep.node_counts:
        cell = sweep.cell("cholesky", n)
        rows.append(
            (
                n,
                f"{cell.create_overhead:.1%}",
                f"{cell.pollution_overhead:.1%}",
                f"{cell.recovery_bytes_per_ckpt_per_node / 1024:.1f}",
                f"{cell.aggregate_throughput_mb_s:.0f}",
                f"{cell.injections_read_per_10k:.2f}",
            )
        )
        print(f"  ran {n} nodes")
    print()
    print(format_table(
        ["nodes", "create", "pollution", "KB/node/ckpt",
         "aggregate MB/s", "read inj/10k"],
        rows,
        title="Cholesky, 100 recovery points/s (cf. paper Figs. 8-11)",
    ))
    print()
    print("The fault-tolerance machinery does not become the bottleneck as")
    print("the machine grows: per-node recovery data shrinks and aggregate")
    print("replication bandwidth rises — the paper's scalability claim.")


if __name__ == "__main__":
    main()
