#!/usr/bin/env python
"""Look inside the protocol: trace the messages of ECP transactions.

Drives a 4-node machine through the life of a single memory item —
first touch, read sharing, a recovery point, a write that degrades the
recovery pair — while recording every network message, then prints the
message log next to the item's state evolution.  A compact way to see
the Extended Coherence Protocol of Section 3.2 actually running.

Run:  python examples/protocol_trace.py
"""

from repro import ArchConfig, ItemState, Machine, TraceWorkload
from repro.checkpoint.establish import node_create_phase
from repro.stats.report import format_table

ITEM = 5
ADDR = ITEM * 128


def census(machine):
    holders = []
    for node in machine.nodes:
        state = node.am.state(ITEM)
        if state is not ItemState.INVALID:
            holders.append(f"node{node.node_id}:{state.name}")
    return ", ".join(holders) or "(no copies)"


def checkpoint(machine):
    for node_id in range(machine.cfg.n_nodes):
        for delay in node_create_phase(machine.protocol, machine.engine, node_id):
            machine.engine.run(until=machine.engine.now + int(delay))
    for node_id in range(machine.cfg.n_nodes):
        machine.protocol.commit_node(node_id)


def main() -> None:
    cfg = ArchConfig(n_nodes=4)
    wl = TraceWorkload.from_ops([[("r", 0)]])
    machine = Machine(
        cfg, wl, protocol="ecp", checkpointing=False, record_network_trace=True
    )
    p = machine.protocol

    steps = []

    def step(label, fn, t):
        before = len(machine.fabric.trace)
        done = fn(t)
        messages = [
            f"{m.kind.value} {m.src}->{m.dst}"
            for m in list(machine.fabric.trace)[before:]
        ]
        steps.append((label, done - t if done else "-", census(machine),
                      "; ".join(messages) or "(local)"))
        return done if done else t

    t = 0
    t = step("node 0 writes (first touch)", lambda t0: p.write(0, ADDR, t0), t)
    t = step("node 1 reads (miss -> Master-Shared)", lambda t0: p.read(1, ADDR, t0), t)
    t = step("node 2 reads (another sharer)", lambda t0: p.read(2, ADDR, t0), t)

    before = len(machine.fabric.trace)
    checkpoint(machine)
    steps.append(("recovery point (create+commit)", "-", census(machine),
                  f"{len(machine.fabric.trace) - before} messages"))

    t = machine.engine.now + 1000
    t = step("node 3 writes (pair -> Inv-CK)", lambda t0: p.write(3, ADDR, t0), t)
    t = step("node 0 reads (served by new owner)", lambda t0: p.read(0, ADDR, t0), t)

    print(format_table(
        ["step", "cycles", "copies of item 5 after", "messages"],
        steps,
        title="Life of one item under the Extended Coherence Protocol",
    ))

    machine.check_invariants()
    print("\nInvariants hold at every step. ✓")


if __name__ == "__main__":
    main()
