#!/usr/bin/env python
"""The ECP beyond hardware COMA: a recoverable DSVM.

The paper's conclusion notes that the extended-coherence approach
"can be used to implement a recoverable distributed shared virtual
memory (DSVM) on top of a multicomputer or a network of workstations"
— which the authors did, on the Intel Paragon and on Chorus [15].

This example runs the same idea at page granularity with software
costs: an 8-node network of workstations running a write-invalidate
SVM whose pages carry Read-CK / Inv-CK / Pre-Commit recovery states.
It establishes periodic recovery points, kills a node mid-run, and
shows the system roll back, re-replicate singleton pages and finish.

Run:  python examples/recoverable_dsvm.py
"""

from repro.dsvm import DsvmConfig, DsvmMachine
from repro.stats.report import format_table
from repro.workloads.synthetic import UniformShared

N_NODES = 8


def run(fail: bool):
    cfg = DsvmConfig(n_nodes=N_NODES, checkpoint_period_refs=3_000)
    wl = UniformShared(
        N_NODES,
        refs_per_proc=12_000,
        region_bytes=2 * 1024 * 1024,
        write_fraction=0.25,
        window_items=32,
    )
    machine = DsvmMachine(
        cfg,
        wl,
        fail_node_at=(400_000, 3) if fail else None,
    )
    return machine, machine.run()


def main() -> None:
    print(f"{N_NODES}-workstation recoverable DSVM (4 KB pages)\n")

    _m0, healthy = run(fail=False)
    m1, faulty = run(fail=True)

    rows = [
        ("references executed", healthy.refs, faulty.refs),
        ("recovery points", healthy.n_checkpoints, faulty.n_checkpoints),
        ("pages replicated at checkpoints",
         healthy.pages_replicated, faulty.pages_replicated),
        ("pages covered by existing read copies",
         healthy.pages_reused, faulty.pages_reused),
        ("recoveries", healthy.n_recoveries, faulty.n_recoveries),
        ("read fault rate", f"{healthy.read_fault_rate:.2%}",
         f"{faulty.read_fault_rate:.2%}"),
        ("total cycles", healthy.total_cycles, faulty.total_cycles),
    ]
    print(format_table(
        ["metric", "failure-free run", "node 3 dies mid-run"],
        rows,
        title="Recoverable DSVM: the ECP at page granularity",
    ))
    print()
    assert faulty.n_recoveries == 1
    print("The faulty run rolled back to its last recovery point, migrated")
    print("the dead workstation's process, re-replicated singleton recovery")
    print("pages and completed — the paper's ECP, without any hardware. ✓")


if __name__ == "__main__":
    main()
