#!/usr/bin/env python
"""How expensive is fault tolerance? — the Fig. 3 trade-off, live.

Sweeps the recovery-point frequency over the paper's range (400, 100,
20, 5 points per second) for two contrasting applications — Barnes
(mostly-read shared data, the friendly case) and Mp3d (migratory,
write-heavy, the stress case) — and prints the overhead decomposition
next to the replication statistics.

The knob to play with: more recovery points per second means less work
lost on a failure but more time spent creating recovery data.

Run:  python examples/frequency_sweep.py
"""

from repro.experiments import FrequencySweep, QUICK
from repro.stats.report import format_table


def main() -> None:
    sweep = FrequencySweep(
        apps=("barnes", "mp3d"),
        frequencies=(400.0, 100.0, 20.0, 5.0),
        n_nodes=16,
        profile=QUICK,
    )
    rows = []
    for app in sweep.apps:
        for freq in sweep.frequencies:
            cell = sweep.cell(app, freq)
            o = cell.overhead
            rows.append(
                (
                    app,
                    f"{freq:.0f}/s",
                    f"{o.create:.1%}",
                    f"{o.commit:.1%}",
                    f"{o.pollution:.1%}",
                    f"{o.total_overhead:.1%}",
                    f"{cell.replication_throughput_mb_s:.1f}",
                    f"{cell.replicated_fraction_reused:.0%}",
                )
            )
            print(f"  ran {app} @ {freq:.0f} points/s "
                  f"({o.n_checkpoints} recovery points)")
    print()
    print(format_table(
        ["app", "freq", "create", "commit", "pollution", "total overhead",
         "MB/s/node", "replicas reused"],
        rows,
        title="Recovery-point frequency vs overhead (cf. paper Figs. 3-4)",
    ))
    print()
    print("Reading the table:")
    print(" - overhead falls steeply as recovery points get rarer;")
    print(" - mp3d pays the most (largest write working set of the suite);")
    print(" - barnes covers many recovery copies with replicas that already")
    print("   exist because its shared data is mostly read (Section 3.3).")


if __name__ == "__main__":
    main()
