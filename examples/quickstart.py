#!/usr/bin/env python
"""Quickstart: simulate a fault-tolerant COMA and read the results.

Builds the paper's 16-node machine (KSR1-like nodes, 2-D wormhole
mesh), runs the Mp3d workload on the standard COMA-F-like protocol and
on the Extended Coherence Protocol at 100 recovery points per second,
and prints the execution-time decomposition of Section 4.2.3:

    T_Ft = T_standard + T_create + T_commit + T_pollution

Run:  python examples/quickstart.py
"""

from repro import ArchConfig, Machine, make_workload
from repro.stats.report import format_table

N_NODES = 16
SCALE = 0.02  # fraction of the full Table 3 instruction counts


def main() -> None:
    print(f"Simulating a {N_NODES}-node COMA (mp3d, scale={SCALE})...")

    # 1. the baseline: standard COMA-F-like coherence protocol
    workload = make_workload("mp3d", n_procs=N_NODES, scale=SCALE)
    baseline = Machine(ArchConfig(n_nodes=N_NODES), workload, protocol="standard").run()

    # 2. the fault-tolerant machine: ECP + coordinated recovery points
    cfg = ArchConfig(n_nodes=N_NODES).with_ft(
        checkpoint_frequency_hz=400,  # the paper's densest setting
    )
    workload = make_workload("mp3d", n_procs=N_NODES, scale=SCALE)
    ft = Machine(cfg, workload, protocol="ecp").run()

    # 3. the paper's decomposition
    t_std = baseline.total_cycles
    s = ft.stats
    rows = [
        ("T_standard", t_std, "100.0%"),
        ("T_create", s.create_cycles, f"{s.create_cycles / t_std:+.1%}"),
        ("T_commit", s.commit_cycles, f"{s.commit_cycles / t_std:+.1%}"),
        ("T_pollution", s.compute_cycles - t_std,
         f"{(s.compute_cycles - t_std) / t_std:+.1%}"),
        ("T_Ft (total)", ft.total_cycles,
         f"{(ft.total_cycles - t_std) / t_std:+.1%} overhead"),
    ]
    print()
    print(format_table(["component", "cycles", "vs T_standard"], rows,
                       title="Execution-time decomposition (Section 4.2.3)"))

    print()
    print(f"recovery points established : {s.n_checkpoints}")
    print(f"recovery data replicated    : {s.ckpt_bytes_replicated() / 1024:.1f} KB")
    print(
        "per-node replication rate   : "
        f"{s.per_node_replication_throughput(cfg.cycle_seconds) / 1e6:.1f} MB/s"
    )
    census = ft.item_census
    print(f"final item census           : {census}")
    # every checkpointed item ends with exactly one Shared-CK1 and one
    # Shared-CK2 copy (invariant I1 of DESIGN.md)
    assert census.get("SHARED_CK1", 0) == census.get("SHARED_CK2", 0)


if __name__ == "__main__":
    main()
