#!/usr/bin/env python
"""Fault injection and backward error recovery, step by step.

Runs the Water workload on a 16-node fault-tolerant COMA and injects
two failures:

1. a *transient* failure (a node crashes and loses its memory content,
   but the hardware returns after a repair delay);
2. a *permanent* failure (the node never returns; its processes are
   restarted on a buddy node after the rollback and the surviving
   Shared-CK singletons are re-replicated).

After each recovery the machine state is audited against the DESIGN.md
invariants, and the run completes all streams despite the failures.

Run:  python examples/fault_recovery.py
"""

from repro import ArchConfig, FailurePlan, Machine, make_workload
from repro.stats.report import format_table

N_NODES = 16
SCALE = 0.005


def run_with(plan, label):
    cfg = ArchConfig(n_nodes=N_NODES).with_ft(
        checkpoint_period_override=20_000,  # dense recovery points
        detection_latency=500,
    )
    wl = make_workload("water", n_procs=N_NODES, scale=SCALE)
    baseline_refs = wl.refs_per_proc() * N_NODES
    machine = Machine(cfg, wl, protocol="ecp", failure_plan=plan)
    result = machine.run()
    machine.check_invariants()

    s = result.stats
    rows = [
        ("failures injected", s.n_failures),
        ("recoveries performed", s.n_recoveries),
        ("recovery points committed", s.n_checkpoints),
        ("recovery wall time (cycles)", s.recovery_cycles),
        ("singleton copies re-replicated", s.total("reconfig_items_recreated")),
        ("references rolled back & re-run", s.refs - baseline_refs),
        ("live nodes at the end", sum(1 for n in machine.nodes if n.alive)),
    ]
    print()
    print(format_table(["metric", "value"], rows, title=label))
    assert all(stream.exhausted for stream in machine.all_streams()), (
        "every application process must finish despite the failure"
    )
    return result


def main() -> None:
    print(f"{N_NODES}-node fault-tolerant COMA, water, scale={SCALE}")

    run_with(
        [FailurePlan(time=80_000, node=5, repair_delay=10_000)],
        "Transient failure of node 5 (memory lost, hardware returns)",
    )

    run_with(
        [FailurePlan(time=80_000, node=5, permanent=True)],
        "Permanent failure of node 5 (work migrates, pairs re-replicate)",
    )

    # multiple transient failures in one run (the paper's fault model
    # tolerates any number of non-overlapping transient failures)
    run_with(
        [
            FailurePlan(time=60_000, node=3, repair_delay=5_000),
            FailurePlan(time=200_000, node=11, repair_delay=5_000),
        ],
        "Two sequential transient failures (nodes 3 and 11)",
    )

    print("\nAll failure scenarios recovered and completed. ✓")


if __name__ == "__main__":
    main()
