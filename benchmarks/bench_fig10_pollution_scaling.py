"""Fig. 10 — pollution effect vs processor count.

The paper's finding: the pollution overhead stays the same or
decreases as the number of processors grows.
"""

from conftest import run_once
from repro.stats.report import format_table


def test_fig10(benchmark, scaling_sweep):
    rows = run_once(benchmark, scaling_sweep.fig10_rows)
    print()
    print(format_table(
        ["app", "nodes", "pollution%"],
        rows, title="Fig. 10 - pollution effect vs processors"))

    pollution = {(r[0], r[1]): r[2] for r in rows}
    apps = sorted({r[0] for r in rows})
    nodes = sorted({r[1] for r in rows})
    n_lo, n_hi = nodes[0], nodes[-1]

    for app in apps:
        # pollution does not grow with the machine (flat or decreasing)
        assert pollution[(app, n_hi)] <= pollution[(app, n_lo)] * 1.5 + 3.0
