"""A5 — COMA vs CC-NUMA as a fault-tolerance substrate.

The paper's core architectural argument (Sections 1 and 3.1):

1. in a COMA, recovery copies live in the attraction memories and the
   create phase can *promote existing replicas* instead of transferring
   data; a CC-NUMA must mirror every modified block explicitly;
2. after a permanent failure, COMA reallocates lost items anywhere
   without address changes; a CC-NUMA must re-home a whole partition
   (bulk transfer) and pay address translation on every later access.

This bench runs the same workload on both machines and reports the
checkpoint traffic and the post-failure reconfiguration cost.
"""

from conftest import run_once
from repro.config import AMConfig, ArchConfig, CacheConfig
from repro.fault.failures import FailurePlan
from repro.machine import Machine
from repro.numa import NumaMachine
from repro.stats.report import format_table
from repro.workloads.splash import make_workload

N_NODES = 16
SCALE = 0.015
CKPT_PERIOD = 60_000  # cycles: several recovery points per scaled run


def _cfg():
    return ArchConfig(n_nodes=N_NODES)


def run_comparison():
    # --- COMA/ECP
    wl = make_workload("mp3d", n_procs=N_NODES, scale=SCALE)
    coma_cfg = _cfg().with_ft(checkpoint_period_override=CKPT_PERIOD)
    coma = Machine(coma_cfg, wl, protocol="ecp").run()
    coma_items = coma.stats.total("ckpt_items_replicated")
    coma_reused = coma.stats.total("ckpt_items_reused")

    # --- CC-NUMA with mirroring
    wl = make_workload("mp3d", n_procs=N_NODES, scale=SCALE)
    numa = NumaMachine(
        _cfg().with_ft(checkpoint_period_override=CKPT_PERIOD), wl
    ).run()

    # --- reconfiguration cost after a permanent failure
    wl = make_workload("mp3d", n_procs=N_NODES, scale=SCALE)
    coma_fail = Machine(
        _cfg().with_ft(checkpoint_period_override=CKPT_PERIOD, detection_latency=500),
        wl,
        protocol="ecp",
        failure_plan=[FailurePlan(time=150_000, node=5, permanent=True)],
    ).run()
    wl = make_workload("mp3d", n_procs=N_NODES, scale=SCALE)
    numa_fail = NumaMachine(
        _cfg().with_ft(checkpoint_period_override=CKPT_PERIOD),
        wl,
        fail_node_at=(150_000, 5),
    ).run()

    return {
        "coma_ckpts": coma.stats.n_checkpoints,
        "coma_transferred": coma_items,
        "coma_reused": coma_reused,
        "numa_ckpts": numa.n_checkpoints,
        "numa_transferred": numa.ckpt_blocks_copied,
        "coma_reconfig_items": coma_fail.stats.total("reconfig_items_recreated"),
        "numa_rehomed_blocks": numa_fail.rehoming_blocks,
        "numa_translated": numa_fail.translated_accesses,
    }


def test_a5(benchmark):
    r = run_once(benchmark, run_comparison)
    print()
    print(format_table(
        ["metric", "COMA (ECP)", "CC-NUMA (mirrors)"],
        [
            ("recovery points", r["coma_ckpts"], r["numa_ckpts"]),
            ("blocks transferred at checkpoints",
             r["coma_transferred"], r["numa_transferred"]),
            ("blocks covered without transfer", r["coma_reused"], 0),
            ("blocks moved by reconfiguration",
             r["coma_reconfig_items"], r["numa_rehomed_blocks"]),
            ("post-failure translated accesses", 0, r["numa_translated"]),
        ],
        title="A5 - COMA vs CC-NUMA as a BER substrate",
    ))
    assert r["coma_ckpts"] >= 1 and r["numa_ckpts"] >= 1
    # the ECP covers part of its recovery data with existing replicas;
    # the NUMA scheme cannot
    assert r["coma_reused"] > 0
    # COMA re-replicates the singleton recovery pairs after the failure
    assert r["coma_reconfig_items"] > 0
    # and NUMA keeps paying for the re-homed addresses afterwards
    assert r["numa_translated"] > 0
