"""Table 2 — read-miss latency from each memory-hierarchy level.

The reproduction is calibrated to match the paper's numbers exactly in
the uncontended case; this bench asserts it.
"""

from conftest import run_once
from repro.experiments.table2 import (
    PAPER_TABLE2,
    print_table2,
    table2_read_latencies,
)


def test_table2(benchmark):
    rows = run_once(benchmark, table2_read_latencies)
    print()
    print_table2()
    measured = dict(rows)
    assert measured == PAPER_TABLE2
