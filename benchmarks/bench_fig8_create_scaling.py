"""Fig. 8 — create-phase cost vs processor count (9 to 56 nodes).

The paper's finding: T_create stays constant or *decreases* as the
machine grows, because fixed-size applications spread their recovery
data over more nodes and the aggregate replication throughput grows.
"""

from conftest import run_once
from repro.stats.report import format_table


def test_fig8(benchmark, scaling_sweep):
    rows = run_once(benchmark, scaling_sweep.fig8_rows)
    print()
    print(format_table(
        ["app", "nodes", "create%", "KB/node/ckpt"],
        rows, title="Fig. 8 - create cost vs processors (100 points/s)"))

    create = {(r[0], r[1]): r[2] for r in rows}
    kb_per_node = {(r[0], r[1]): r[3] for r in rows}
    apps = sorted({r[0] for r in rows})
    nodes = sorted({r[1] for r in rows})
    n_lo, n_hi = nodes[0], nodes[-1]

    for app in apps:
        # the paper's headline: T_create stays constant or *decreases*
        # as the machine grows
        assert create[(app, n_hi)] <= create[(app, n_lo)] * 1.5 + 2.0
        # per-node recovery volume stays bounded (the per-checkpoint
        # mean is noisy on few-checkpoint cells, so this is a sanity
        # bound rather than strict monotonicity)
        assert kb_per_node[(app, n_hi)] <= kb_per_node[(app, n_lo)] * 3.0 + 4.0
