"""A1 — recovery correctness and cost under node failures.

Beyond the paper's evaluation (which measures failure-free overheads),
this bench exercises the full failure path: detection, restoration,
reconfiguration and rollback re-execution, for both transient and
permanent failures.
"""

from conftest import run_once
from repro.experiments import ablation_recovery
from repro.stats.report import format_table


def test_a1_transient(benchmark):
    result = run_once(benchmark, lambda: ablation_recovery(permanent=False))
    print()
    print(format_table(
        ["kind", "recoveries", "recovery cycles", "reconfig items", "refs re-run"],
        [(result.kind, result.n_recoveries, result.recovery_cycles,
          result.reconfig_items, result.refs_reexecuted)],
        title="A1 - transient failure"))
    assert result.completed
    assert result.n_recoveries == 1
    assert result.refs_reexecuted >= 0


def test_a1_permanent(benchmark):
    result = run_once(benchmark, lambda: ablation_recovery(permanent=True))
    print()
    print(format_table(
        ["kind", "recoveries", "recovery cycles", "reconfig items", "refs re-run"],
        [(result.kind, result.n_recoveries, result.recovery_cycles,
          result.reconfig_items, result.refs_reexecuted)],
        title="A1 - permanent failure"))
    assert result.completed
    assert result.n_recoveries == 1
    # a permanent failure loses recovery copies: reconfiguration had to
    # re-replicate the singletons
    assert result.reconfig_items > 0
