"""Fig. 5 — node miss rate vs recovery-point frequency.

The paper's finding: the AM miss rate barely moves with the
recovery-point frequency, because unmodified recovery copies remain
readable in the AMs.
"""

from conftest import run_once
from repro.stats.report import format_table


def test_fig5(benchmark, freq_sweep):
    rows = run_once(benchmark, freq_sweep.fig5_rows)
    print()
    print(format_table(
        ["app", "freq/s", "std miss%", "ecp miss%", "ecp read miss%"],
        rows, title="Fig. 5 - AM miss rate vs recovery point frequency"))

    ecp_rate = {(r[0], r[1]): r[3] for r in rows}
    std_rate = {(r[0], r[1]): r[2] for r in rows}
    apps = sorted({r[0] for r in rows})
    freqs = sorted({r[1] for r in rows})

    for app in apps:
        # per cell, the ECP barely perturbs the standard miss rate
        # (recovery copies remain readable)
        for f in freqs:
            assert ecp_rate[(app, f)] <= 1.5 * std_rate[(app, f)] + 0.4
        # the ECP/standard ratio is flat across the frequency sweep
        # (cells differ in run scale, so compare ratios, not rates)
        ratios = [
            ecp_rate[(app, f)] / max(0.05, std_rate[(app, f)]) for f in freqs
        ]
        assert max(ratios) - min(ratios) < 0.6
