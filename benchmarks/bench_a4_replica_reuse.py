"""A4 — the Master-Shared replica-reuse optimisation (Section 3.3).

"For replicated Master-Shared items, an optimization consists in
choosing one of the replica to become the second recovery copy, thus
avoiding a data transfer."  Barnes (mostly-read shared data) is the
paper's showcase: at 5 points/s, 52% of items needing replication are
already replicated.
"""

from conftest import run_once
from repro.experiments import ablation_replica_reuse
from repro.stats.report import format_table


def test_a4(benchmark):
    result = run_once(benchmark, ablation_replica_reuse)
    print()
    print(format_table(
        ["variant", "items reused", "bytes transferred", "create cycles"],
        [("reuse on", result.items_reused_on, result.bytes_transferred_on,
          result.create_cycles_on),
         ("reuse off", 0, result.bytes_transferred_off,
          result.create_cycles_off)],
        title="A4 - replica reuse"))
    assert result.items_reused_on > 0
    # reuse avoids data transfers ...
    assert result.bytes_transferred_on < result.bytes_transferred_off
    # ... and does not lengthen the create phase
    assert result.create_cycles_on <= result.create_cycles_off * 1.1
