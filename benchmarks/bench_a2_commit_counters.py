"""A2 — the recovery-point-counter commit optimisation.

Section 4.2.3: "Solutions using a node recovery point counter ...
would nullify T_commit."  This bench measures T_commit with the
state-memory scan vs with counters.
"""

from conftest import run_once
from repro.experiments import ablation_commit_counters
from repro.stats.report import format_table


def test_a2(benchmark):
    result = run_once(benchmark, ablation_commit_counters)
    print()
    print(format_table(
        ["variant", "commit cycles"],
        [("state-memory scan", result.commit_cycles_scan),
         ("recovery-point counters", result.commit_cycles_counters)],
        title="A2 - commit-phase cost"))
    assert result.commit_cycles_scan > 0
    # the optimisation removes essentially all of T_commit
    assert result.reduction > 0.95
