"""Fig. 4 — per-node replication throughput during establishment.

The paper reports ~20 MB/s per node for all applications, rising to
~30 MB/s for Barnes at low frequency because over half of its recovery
items are already replicated (mostly-read shared data).
"""

from conftest import run_once
from repro.stats.report import format_table


def test_fig4(benchmark, freq_sweep):
    rows = run_once(benchmark, freq_sweep.fig4_rows)
    print()
    print(format_table(
        ["app", "freq/s", "MB/s/node", "reused%"],
        rows, title="Fig. 4 - per-node replication throughput"))

    throughput = {(r[0], r[1]): r[2] for r in rows}
    reused = {(r[0], r[1]): r[3] for r in rows}
    apps = sorted({r[0] for r in rows})
    freqs = sorted({r[1] for r in rows})

    # the interconnect sustains multi-MB/s per-node replication for
    # every app at every frequency (paper: ~20 MB/s per node)
    for app in apps:
        for freq in freqs:
            assert throughput[(app, freq)] > 4.0

    # the create phase covers part of its recovery data with replicas
    # that already exist (the Section 3.3 optimisation); barnes's
    # mostly-read sharing gives it more reuse at long periods than at
    # short ones
    assert reused[("barnes", min(freqs))] > 0.0
    assert reused[("barnes", min(freqs))] >= reused[("barnes", max(freqs))] - 2.0
