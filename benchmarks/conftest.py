"""Shared fixtures for the benchmark suite.

Figures 3-7 share one (app x frequency) sweep and Figures 8-11 one
(app x node-count) sweep; the session-scoped fixtures below make sure
each simulation runs exactly once per benchmark session.

Profiles: set ``REPRO_PROFILE=full`` for larger workloads and less
frequency compression (slower, tighter numbers); the default ``quick``
profile keeps the whole suite laptop-sized.
"""

import pytest

from repro.experiments import FrequencySweep, ScalingSweep, current_profile


def pytest_report_header(config):
    profile = current_profile()
    return (
        f"repro experiment profile: {profile.name} "
        f"(scale>={profile.base_scale}, compression={profile.frequency_compression}, "
        f"min_ckpts={profile.min_checkpoints})"
    )


@pytest.fixture(scope="session")
def freq_sweep() -> FrequencySweep:
    return FrequencySweep()


@pytest.fixture(scope="session")
def scaling_sweep() -> ScalingSweep:
    return ScalingSweep()


def run_once(benchmark, func):
    """Run a harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
