"""Shared fixtures for the benchmark suite.

Figures 3-7 share one (app x frequency) sweep and Figures 8-11 one
(app x node-count) sweep; the session-scoped fixtures below make sure
each simulation runs exactly once per benchmark session, and the
orchestrator's content-addressed result store (``.repro-cache/`` by
default, see ``repro cache stats``) shares completed cells across
*separate* benchmark processes as well: a re-run, or a single
``pytest benchmarks/bench_fig5_miss_rate.py`` invocation, reuses the
cells an earlier session already simulated.

Profiles: set ``REPRO_PROFILE=full`` for larger workloads and less
frequency compression (slower, tighter numbers); the default ``quick``
profile keeps the whole suite laptop-sized.  Set ``REPRO_CACHE=off``
to force every session to recompute from scratch.
"""

import pytest

from repro.experiments import FrequencySweep, ScalingSweep, current_profile
from repro.orch.store import default_store


def pytest_report_header(config):
    profile = current_profile()
    store = default_store()
    cache = f"cache={store.root}" if store is not None else "cache=off"
    return (
        f"repro experiment profile: {profile.name} "
        f"(scale>={profile.base_scale}, period_cap={profile.period_cap_refs} refs, "
        f"min_ckpts={profile.min_checkpoints}); {cache}"
    )


@pytest.fixture(scope="session")
def freq_sweep() -> FrequencySweep:
    return FrequencySweep()


@pytest.fixture(scope="session")
def scaling_sweep() -> ScalingSweep:
    return ScalingSweep()


def run_once(benchmark, func):
    """Run a harness exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
