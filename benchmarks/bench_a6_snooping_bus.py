"""A6 — the ECP on a snooping bus (the paper's Section 5 claim).

"The extended coherence protocol can also be implemented with snooping
coherence protocols."  This bench runs the same workload on the
bus-based and the mesh-based COMA: the recovery-state machinery behaves
identically (pairs created, replicas reused), while the bus's global
serialization shows up as utilisation that the mesh does not suffer.
"""

from conftest import run_once
from repro.bus import BusConfig, BusMachine
from repro.config import AMConfig, ArchConfig, CacheConfig
from repro.machine import Machine
from repro.stats.report import format_table
from repro.workloads.synthetic import UniformShared

N_NODES = 4
REFS = 8_000
PERIOD_REFS = 2_000


def _workload():
    return UniformShared(
        N_NODES, refs_per_proc=REFS, region_bytes=512 * 1024,
        write_fraction=0.3, window_items=24,
    )


def run_comparison():
    bus = BusMachine(
        BusConfig(n_nodes=N_NODES, checkpoint_period_refs=PERIOD_REFS),
        _workload(),
    ).run()

    mesh_cfg = ArchConfig(
        n_nodes=N_NODES,
        am=AMConfig(size_bytes=2 * 1024 * 1024),
        cache=CacheConfig(size_bytes=64 * 1024),
    ).with_ft(checkpoint_period_override=50_000)
    mesh_machine = Machine(mesh_cfg, _workload(), protocol="ecp")
    mesh = mesh_machine.run()
    mesh_machine.check_invariants()

    return {
        "bus_ckpts": bus.n_checkpoints,
        "bus_replicated": bus.items_replicated,
        "bus_reused": bus.items_reused,
        "bus_util": bus.bus_utilisation(),
        "mesh_ckpts": mesh.stats.n_checkpoints,
        "mesh_replicated": mesh.stats.total("ckpt_items_replicated"),
        "mesh_reused": mesh.stats.total("ckpt_items_reused"),
        "mesh_census": mesh.item_census,
        "bus_pairs": bus,
    }


def test_a6(benchmark):
    r = run_once(benchmark, run_comparison)
    print()
    print(format_table(
        ["metric", "snooping bus", "2-D mesh"],
        [
            ("recovery points", r["bus_ckpts"], r["mesh_ckpts"]),
            ("items replicated", r["bus_replicated"], r["mesh_replicated"]),
            ("items reused", r["bus_reused"], r["mesh_reused"]),
            ("bus utilisation", f"{r['bus_util']:.0%}", "-"),
        ],
        title="A6 - the ECP on a snooping bus vs the mesh",
    ))
    # both interconnects establish recovery points with the same states
    assert r["bus_ckpts"] >= 1 and r["mesh_ckpts"] >= 1
    assert r["bus_replicated"] + r["bus_reused"] > 0
    assert r["mesh_replicated"] + r["mesh_reused"] > 0
    census = r["mesh_census"]
    assert census.get("SHARED_CK1", 0) == census.get("SHARED_CK2", 0)
    # the bus is a globally serialized resource
    assert 0.0 < r["bus_util"] <= 1.0
