"""Fig. 6 — injections per node per 10 000 references vs frequency.

Paper findings: read-triggered injections are roughly independent of
the recovery-point frequency (unmodified recovery copies stay
readable); write-triggered injections grow with frequency, and at
400 points/s, 88-98% of them are writes on Shared-CK1 copies.
"""

from conftest import run_once
from repro.stats.report import format_table


def test_fig6(benchmark, freq_sweep):
    rows = run_once(benchmark, freq_sweep.fig6_rows)
    print()
    print(format_table(
        ["app", "freq/s", "read inj/10k", "write inj/10k", "Shared-CK1 share%"],
        rows, title="Fig. 6 - injections per 10k references"))

    read_inj = {(r[0], r[1]): r[2] for r in rows}
    write_inj = {(r[0], r[1]): r[3] for r in rows}
    ck1_share = {(r[0], r[1]): r[4] for r in rows}
    apps = sorted({r[0] for r in rows})
    freqs = sorted({r[1] for r in rows})
    f_hi, f_lo = max(freqs), min(freqs)

    for app in apps:
        # write injections grow with the recovery-point frequency
        assert write_inj[(app, f_hi)] > write_inj[(app, f_lo)]
        # at high frequency, write injections dominate read injections
        assert write_inj[(app, f_hi)] > read_inj[(app, f_hi)]
        # most write injections hit Shared-CK1 copies (paper: 88-98%)
        assert ck1_share[(app, f_hi)] > 60.0
