"""Fig. 3 — execution-time overhead of the ECP.

Regenerates the paper's per-application, per-frequency decomposition
T_Ft = T_standard + T_create + T_commit + T_pollution and asserts the
qualitative findings:

- overhead falls as the recovery-point frequency drops (400 -> 5 /s);
- Mp3d (high write rate, large working set) is the worst case;
- T_create is the dominant fault-tolerance component at high frequency.
"""

from conftest import run_once
from repro.stats.report import format_table


def test_fig3(benchmark, freq_sweep):
    rows = run_once(benchmark, freq_sweep.fig3_rows)
    print()
    print(format_table(
        ["app", "freq/s", "create%", "commit%", "pollution%", "total%", "ckpts"],
        rows, title="Fig. 3 - time overhead (percent of T_standard)"))

    by_cell = {(app, freq): row for (app, freq, *row2), row in
               [((r[0], r[1], None), r) for r in rows]}
    overhead = {(r[0], r[1]): r[5] for r in rows}
    apps = sorted({r[0] for r in rows})
    freqs = sorted({r[1] for r in rows})

    # overhead shrinks with lower frequency for every app
    for app in apps:
        assert overhead[(app, min(freqs))] < overhead[(app, max(freqs))]

    # Mp3d is the worst case at the highest frequency
    worst = max(apps, key=lambda a: overhead[(a, max(freqs))])
    assert worst == "mp3d"

    # at the highest frequency, create dominates commit for every app
    create = {(r[0], r[1]): r[2] for r in rows}
    commit = {(r[0], r[1]): r[3] for r in rows}
    for app in apps:
        assert create[(app, max(freqs))] > commit[(app, max(freqs))]

    # several recovery points were actually established in every cell
    for r in rows:
        assert r[6] >= 1
