"""Table 3 — simulated application characteristics.

Checks that each synthetic generator reproduces its Table 3 row
(read/write and shared read/write densities) within tolerance.
"""

import pytest

from conftest import run_once
from repro.experiments.table3 import (
    PAPER_TABLE3,
    print_table3,
    table3_characteristics,
)


def test_table3(benchmark):
    rows = run_once(benchmark, table3_characteristics)
    print()
    print_table3()
    for row in rows:
        paper = PAPER_TABLE3[row.app]
        assert row.reads_pct == pytest.approx(paper.reads_pct, rel=0.10)
        assert row.writes_pct == pytest.approx(paper.writes_pct, rel=0.10)
        assert row.shared_reads_pct == pytest.approx(paper.shared_reads_pct, rel=0.20)
        assert row.shared_writes_pct == pytest.approx(
            paper.shared_writes_pct, rel=0.35
        )
