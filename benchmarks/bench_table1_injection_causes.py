"""Table 1 — new injections introduced by the ECP.

Drives a machine into each (access, local copy state) combination of
Table 1 and verifies the predicted injection cause fires.
"""

from conftest import run_once
from repro.experiments.table1 import table1_injection_causes, print_table1

EXPECTED = {
    ("Replacement", "Shared-CK"): "replacement_shared_ck",
    ("Replacement", "Inv-CK"): "replacement_inv_ck",
    ("Read access", "Inv-CK"): "read_inv_ck",
    ("Write access", "Inv-CK"): "write_inv_ck",
    ("Write access", "Shared-CK"): "write_shared_ck",
}


def test_table1(benchmark):
    rows = run_once(benchmark, table1_injection_causes)
    print()
    print_table1()
    assert len(rows) == 5
    for access, state, cause, count in rows:
        assert EXPECTED[(access, state)] == cause
        assert count >= 1, f"{access}/{state} did not trigger {cause}"
