"""Fig. 9 — aggregate recovery-data throughput vs processor count.

The paper measures near-linear growth (Cholesky: 211 MB/s at 9
processors to 1.1 GB/s at 56).
"""

from conftest import run_once
from repro.stats.report import format_table


def test_fig9(benchmark, scaling_sweep):
    rows = run_once(benchmark, scaling_sweep.fig9_rows)
    print()
    print(format_table(
        ["app", "nodes", "aggregate MB/s"],
        rows, title="Fig. 9 - recovery data throughput vs processors"))

    throughput = {(r[0], r[1]): r[2] for r in rows}
    apps = sorted({r[0] for r in rows})
    nodes = sorted({r[1] for r in rows})
    n_lo, n_hi = nodes[0], nodes[-1]

    for app in apps:
        # aggregate throughput grows with the machine
        assert throughput[(app, n_hi)] > throughput[(app, n_lo)]
        # super-sub-linear but clearly scaling: at least ~2x over a
        # ~6x node-count growth
        assert throughput[(app, n_hi)] > 1.8 * throughput[(app, n_lo)]
