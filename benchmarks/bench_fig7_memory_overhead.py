"""Fig. 7 — page allocation: ECP vs standard protocol.

The paper measures a memory overhead of 1.1x to 2.6x pages allocated;
applications dominated by shared pages stay below 1.5x because the
recovery copies reuse replication that already exists.
"""

from conftest import run_once
from repro.stats.report import format_table


def test_fig7(benchmark, freq_sweep):
    rows = run_once(benchmark, freq_sweep.fig7_rows)
    print()
    print(format_table(
        ["app", "pages std", "pages ecp", "ratio"],
        rows, title="Fig. 7 - page allocation (memory overhead)"))

    for app, pages_std, pages_ecp, ratio in rows:
        assert pages_ecp >= pages_std          # recovery copies cost memory
        assert ratio < 4.0                     # bounded by the 4-copy worst case
    ratios = {r[0]: r[3] for r in rows}
    # shared-data-dominated apps stay cheap (paper: < 1.5x for mp3d,
    # cholesky, barnes)
    assert min(ratios.values()) < 2.0
