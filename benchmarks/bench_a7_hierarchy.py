"""A7 — why the paper picks a *non-hierarchical* COMA (Section 2.2).

"The loss of an intermediate node in a hierarchy could cause the loss
of the whole underlying sub-system, resulting in multiple failures."

This bench quantifies the claim on a DDM-like two-level hierarchy: a
leaf failure loses one AM (same as the flat machine), while a cluster-
directory failure takes its whole subtree offline.
"""

from conftest import run_once
from repro.hierarchy import HierarchyConfig, availability_after_failure
from repro.stats.report import format_table


def test_a7(benchmark):
    cfg = HierarchyConfig(n_clusters=4, leaves_per_cluster=4)
    summary = run_once(benchmark, lambda: availability_after_failure(cfg))
    print()
    print(format_table(
        ["failure", "memory lost"],
        [
            ("flat COMA, one node", f"{summary['flat_loss']:.1%}"),
            ("hierarchy, one leaf", f"{summary['leaf_failure_loss']:.1%}"),
            ("hierarchy, one directory",
             f"{summary['directory_failure_loss']:.1%}"),
        ],
        title="A7 - availability: flat vs hierarchical COMA (Section 2.2)",
    ))
    assert summary["leaf_failure_loss"] == summary["flat_loss"]
    assert (
        summary["directory_failure_loss"]
        >= cfg.leaves_per_cluster * summary["flat_loss"]
    )
