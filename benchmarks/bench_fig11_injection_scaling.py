"""Fig. 11 — injections per node per 10 000 references vs processors.

The paper's finding: write-triggered injections stay roughly constant
while read-triggered injections *decrease* with more processors,
because shared items have a greater probability of finding unused
memory (more page copies) on a larger machine.
"""

from conftest import run_once
from repro.stats.report import format_table


def test_fig11(benchmark, scaling_sweep):
    rows = run_once(benchmark, scaling_sweep.fig11_rows)
    print()
    print(format_table(
        ["app", "nodes", "read inj/10k", "write inj/10k"],
        rows, title="Fig. 11 - injections vs processors"))

    read_inj = {(r[0], r[1]): r[2] for r in rows}
    apps = sorted({r[0] for r in rows})
    nodes = sorted({r[1] for r in rows})
    n_lo, n_hi = nodes[0], nodes[-1]

    for app in apps:
        # read injections do not grow with the machine
        assert read_inj[(app, n_hi)] <= read_inj[(app, n_lo)] + 1.0
