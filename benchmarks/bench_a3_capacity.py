"""A3 — capacity-replacement stress.

The paper's runs never replace pages ("the size of the AM is large
compared to the size of the applications").  This bench shrinks the
AM until the working set no longer fits, forcing page evictions and
the replacement injections of Table 1, and verifies the machine
completes with invariants intact.
"""

from conftest import run_once
from repro.experiments import ablation_capacity
from repro.stats.report import format_table


def test_a3(benchmark):
    result = run_once(benchmark, ablation_capacity)
    print()
    print(format_table(
        ["AM bytes", "page evictions", "replacement injections"],
        [(result.am_bytes, result.page_evictions, result.replacement_injections)],
        title="A3 - capacity stress"))
    assert result.completed
    assert result.page_evictions > 0
